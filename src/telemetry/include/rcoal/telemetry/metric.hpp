/**
 * @file
 * Telemetry instrument types: Counter, Gauge, LogHistogram.
 *
 * All three are allocation-free on the hot path: a LogHistogram
 * allocates its (fixed) bucket array once at construction, and
 * observe()/inc()/set() are plain arithmetic afterwards.  Instruments
 * are owned by a MetricRegistry and handed out by reference; callers
 * keep the reference and mutate it directly.
 */

#ifndef RCOAL_TELEMETRY_METRIC_HPP
#define RCOAL_TELEMETRY_METRIC_HPP

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "rcoal/common/histogram.hpp"
#include "rcoal/common/logging.hpp"

namespace rcoal::telemetry {

/** What a registry slot holds; fixed at registration time. */
enum class MetricKind { Counter, Gauge, Histogram };

/** Human-readable kind name for diagnostics. */
const char *metricKindName(MetricKind kind);

/**
 * Monotonically non-decreasing unsigned counter.
 *
 * Two update styles are supported: event-sourced increments via inc(),
 * and collector-style refresh via set(), which asserts monotonicity so
 * a collector wired to a non-cumulative source fails loudly.
 */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1) { total += delta; }

    /** Refresh from a cumulative source; must never decrease. */
    void set(std::uint64_t v)
    {
        RCOAL_ASSERT(v >= total,
                     "counter went backwards (%llu -> %llu)",
                     static_cast<unsigned long long>(total),
                     static_cast<unsigned long long>(v));
        total = v;
    }

    std::uint64_t value() const { return total; }

  private:
    std::uint64_t total = 0;
};

/** Point-in-time value; may go up or down. */
class Gauge
{
  public:
    void set(double v) { current = v; }
    double value() const { return current; }

  private:
    double current = 0.0;
};

/**
 * Fixed-bucket log-linear histogram over unsigned 64-bit values
 * (HDR-histogram bucketing).
 *
 * Values below 16 get exact single-value buckets; above that, each
 * power-of-two range is split into 16 sub-buckets, bounding the
 * relative quantile error at 1/16 (6.25%).  The bucket array is sized
 * at construction from @p value_bits (largest representable exponent);
 * larger values clamp into the final bucket (sum/min/max stay exact).
 *
 * The sparse rcoal::Histogram stays the tool for exact small-domain
 * distributions (subwarp sizes, access counts); toHistogram() bridges
 * into it so its ASCII rendering and moment helpers are reusable.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    static constexpr unsigned kDefaultValueBits = 40;

    explicit LogHistogram(unsigned value_bits = kDefaultValueBits);

    void observe(std::uint64_t v)
    {
        ++buckets[bucketIndex(v)];
        ++total;
        sumValues += v;
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }

    std::uint64_t count() const { return total; }
    std::uint64_t sum() const { return sumValues; }
    bool empty() const { return total == 0; }

    /** Smallest / largest observed value; require non-empty. */
    std::uint64_t minValue() const;
    std::uint64_t maxValue() const;

    double mean() const;

    std::size_t bucketCount() const { return buckets.size(); }
    std::uint64_t bucketCountAt(std::size_t i) const
    {
        return buckets[i];
    }

    /** Largest value mapping into bucket @p i (inclusive). */
    std::uint64_t bucketUpperBound(std::size_t i) const;

    /**
     * Nearest-rank quantile, resolved to the selected bucket's upper
     * bound and clamped to the observed min/max (so quantile(0) and
     * quantile(1) are exact).  Requires non-empty.
     */
    std::uint64_t quantileValue(double p) const;
    double quantile(double p) const
    {
        return static_cast<double>(quantileValue(p));
    }

    /** Densify into the sparse histogram (bucket upper bound, count). */
    Histogram toHistogram() const;

    std::size_t bucketIndex(std::uint64_t v) const
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        const unsigned e = 63u - static_cast<unsigned>(
            std::countl_zero(v));
        if (e >= valueBits)
            return buckets.size() - 1;
        const auto sub = static_cast<std::size_t>(
            (v >> (e - kSubBits)) & (kSubBuckets - 1));
        return kSubBuckets +
               static_cast<std::size_t>(e - kSubBits) * kSubBuckets +
               sub;
    }

  private:
    unsigned valueBits;
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    std::uint64_t sumValues = 0;
    std::uint64_t minV = ~std::uint64_t{0};
    std::uint64_t maxV = 0;
};

} // namespace rcoal::telemetry

#endif // RCOAL_TELEMETRY_METRIC_HPP
