/**
 * @file
 * LeakageAuditor implementation.
 */

#include "rcoal/telemetry/leakage_auditor.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "rcoal/common/logging.hpp"

namespace rcoal::telemetry {

LeakageAuditor::LeakageAuditor(MetricRegistry &registry,
                               const Config &config,
                               const MetricRegistry::Labels &labels)
    : cfg(config),
      observations(registry.counter(
          "rcoal_leakage_observations_total",
          "Completed requests fed to the leakage auditor", labels)),
      alertTransitions(registry.counter(
          "rcoal_leakage_alert_transitions_total",
          "Times the leakage alert flipped from clear to firing",
          labels)),
      correlationGauge(registry.gauge(
          "rcoal_leakage_correlation",
          "Streaming Pearson correlation between baseline-predicted "
          "last-round coalesced accesses and measured last-round time",
          labels)),
      alertGauge(registry.gauge(
          "rcoal_leakage_alert",
          "1 when |rcoal_leakage_correlation| is at or above the "
          "alert threshold with enough samples",
          labels)),
      thresholdGauge(registry.gauge(
          "rcoal_leakage_alert_threshold",
          "Configured |correlation| alert threshold", labels))
{
    RCOAL_ASSERT(cfg.alertThreshold > 0.0 && cfg.alertThreshold < 1.0,
                 "leakage alert threshold %f outside (0, 1)",
                 cfg.alertThreshold);
    RCOAL_ASSERT(cfg.minSamples >= 2,
                 "correlation needs at least 2 samples");
    thresholdGauge.set(cfg.alertThreshold);
    publish();
}

void
LeakageAuditor::observe(double predicted_accesses,
                        double measured_time)
{
    ++n;
    const double count = static_cast<double>(n);
    const double dx = predicted_accesses - meanX;
    meanX += dx / count;
    const double dy = measured_time - meanY;
    meanY += dy / count;
    const double dx2 = predicted_accesses - meanX;
    const double dy2 = measured_time - meanY;
    m2x += dx * dx2;
    m2y += dy * dy2;
    cxy += dx * dy2;

    observations.inc();
    const bool firing = alerting();
    if (firing && !alertState)
        alertTransitions.inc();
    alertState = firing;
    publish();
}

double
LeakageAuditor::correlation() const
{
    if (n < 2 || m2x <= 0.0 || m2y <= 0.0)
        return 0.0;
    return cxy / std::sqrt(m2x * m2y);
}

bool
LeakageAuditor::alerting() const
{
    return n >= cfg.minSamples &&
           std::fabs(correlation()) >= cfg.alertThreshold;
}

void
LeakageAuditor::publish()
{
    correlationGauge.set(correlation());
    alertGauge.set(alertState ? 1.0 : 0.0);
}

FleetLeakageAuditor::FleetLeakageAuditor(
    MetricRegistry &registry, const LeakageAuditor::Config &config,
    unsigned num_replicas)
    : aggregate(registry, config, {{"replica", "fleet"}})
{
    RCOAL_ASSERT(num_replicas > 0,
                 "fleet auditor needs at least one replica");
    perReplica.reserve(num_replicas);
    for (unsigned r = 0; r < num_replicas; ++r) {
        perReplica.push_back(std::make_unique<LeakageAuditor>(
            registry, config,
            MetricRegistry::Labels{{"replica", std::to_string(r)}}));
    }
}

void
FleetLeakageAuditor::observe(unsigned replica,
                             double predicted_accesses,
                             double measured_time)
{
    RCOAL_ASSERT(replica < perReplica.size(),
                 "observation for unknown replica %u", replica);
    perReplica[replica]->observe(predicted_accesses, measured_time);
    aggregate.observe(predicted_accesses, measured_time);
}

double
FleetLeakageAuditor::correlation(unsigned replica) const
{
    RCOAL_ASSERT(replica < perReplica.size(),
                 "correlation for unknown replica %u", replica);
    return perReplica[replica]->correlation();
}

bool
FleetLeakageAuditor::alerting() const
{
    if (aggregate.alerting())
        return true;
    for (const auto &auditor : perReplica) {
        if (auditor->alerting())
            return true;
    }
    return false;
}

std::size_t
FleetLeakageAuditor::samples(unsigned replica) const
{
    RCOAL_ASSERT(replica < perReplica.size(),
                 "samples for unknown replica %u", replica);
    return perReplica[replica]->samples();
}

StageLeakageAuditor::StageLeakageAuditor(
    MetricRegistry &registry, const LeakageAuditor::Config &config,
    std::vector<std::string> stage_names,
    const MetricRegistry::Labels &labels)
    : names(std::move(stage_names))
{
    RCOAL_ASSERT(!names.empty(),
                 "stage auditor needs at least one stage");
    perStage.reserve(names.size());
    for (const std::string &name : names) {
        MetricRegistry::Labels staged = labels;
        staged.emplace_back("stage", name);
        perStage.push_back(
            std::make_unique<LeakageAuditor>(registry, config, staged));
    }
}

void
StageLeakageAuditor::observe(std::size_t stage,
                             double predicted_accesses,
                             double stage_duration)
{
    RCOAL_ASSERT(stage < perStage.size(),
                 "observation for unknown stage %zu", stage);
    perStage[stage]->observe(predicted_accesses, stage_duration);
}

double
StageLeakageAuditor::correlation(std::size_t stage) const
{
    RCOAL_ASSERT(stage < perStage.size(),
                 "correlation for unknown stage %zu", stage);
    return perStage[stage]->correlation();
}

bool
StageLeakageAuditor::alerting(std::size_t stage) const
{
    RCOAL_ASSERT(stage < perStage.size(),
                 "alerting for unknown stage %zu", stage);
    return perStage[stage]->alerting();
}

bool
StageLeakageAuditor::anyAlerting() const
{
    for (const auto &auditor : perStage) {
        if (auditor->alerting())
            return true;
    }
    return false;
}

std::size_t
StageLeakageAuditor::samples(std::size_t stage) const
{
    RCOAL_ASSERT(stage < perStage.size(),
                 "samples for unknown stage %zu", stage);
    return perStage[stage]->samples();
}

const std::string &
StageLeakageAuditor::stageName(std::size_t stage) const
{
    RCOAL_ASSERT(stage < names.size(), "name for unknown stage %zu",
                 stage);
    return names[stage];
}

} // namespace rcoal::telemetry
