/**
 * @file
 * CoalescedAccessDistribution implementation.
 */

#include "rcoal/theory/coalesced_distribution.hpp"

#include <cmath>

#include "rcoal/common/logging.hpp"
#include "rcoal/numeric/combinatorics.hpp"

namespace rcoal::theory {

using numeric::BigRational;
using numeric::BigUInt;

CoalescedAccessDistribution::CoalescedAccessDistribution(unsigned m,
                                                         unsigned n)
    : mThreads(m), nBlocks(n)
{
    RCOAL_ASSERT(m >= 1 && n >= 1, "N_{m,n} requires m, n >= 1");
    const BigUInt denom = BigUInt(n).pow(m);
    const unsigned hi = std::min(m, n);
    probabilities.resize(hi + 1);
    BigRational total;
    for (unsigned i = 1; i <= hi; ++i) {
        const BigUInt ways =
            numeric::fallingFactorial(n, i) * numeric::stirling2(m, i);
        probabilities[i] = BigRational(ways, denom);
        total += probabilities[i];
        mu += BigRational(BigUInt(i), BigUInt(1)) * probabilities[i];
        mu2 += BigRational(BigUInt(std::uint64_t{i} * i), BigUInt(1)) *
               probabilities[i];
    }
    RCOAL_ASSERT(total == BigRational(1),
                 "N_{%u,%u} probabilities sum to %s, not 1", m, n,
                 total.toString().c_str());
}

BigRational
CoalescedAccessDistribution::pmfExact(unsigned i) const
{
    if (i >= probabilities.size())
        return {};
    return probabilities[i];
}

double
CoalescedAccessDistribution::pmf(unsigned i) const
{
    return pmfExact(i).toDouble();
}

double
CoalescedAccessDistribution::variance() const
{
    const double m1 = mu.toDouble();
    return mu2.toDouble() - m1 * m1;
}

double
CoalescedAccessDistribution::meanClosedForm(unsigned m, unsigned n)
{
    return n * (1.0 - std::pow(1.0 - 1.0 / n, m));
}

} // namespace rcoal::theory
