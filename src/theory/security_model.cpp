/**
 * @file
 * Analytical security model implementation.
 */

#include "rcoal/theory/security_model.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "rcoal/common/logging.hpp"
#include "rcoal/numeric/combinatorics.hpp"
#include "rcoal/numeric/partitions.hpp"

namespace rcoal::theory {

using numeric::BigUInt;
using numeric::Partition;

namespace {

/** FSS subwarp capacities: N/M with the remainder spread (as in core). */
std::vector<unsigned>
fssCapacities(unsigned n, unsigned m)
{
    std::vector<unsigned> sizes(m, n / m);
    for (unsigned i = 0; i < n % m; ++i)
        ++sizes[i];
    return sizes;
}

/**
 * Per-(N) table of g[f][c] = P(subwarp of capacity c sees block with
 * frequency f) = 1 - C(N-c, f) / C(N, f).
 */
class OccupancyTable
{
  public:
    explicit OccupancyTable(unsigned n) : size(n), g(n + 1)
    {
        for (unsigned f = 0; f <= n; ++f) {
            g[f].resize(n + 1, 0.0L);
            const long double denom =
                numeric::binomial(n, f).toLongDouble();
            for (unsigned c = 1; c <= n; ++c) {
                long double miss = 0.0L;
                if (f <= n - c) {
                    miss = numeric::binomial(n - c, f).toLongDouble() /
                           denom;
                }
                g[f][c] = 1.0L - miss;
            }
        }
    }

    long double
    value(unsigned f, unsigned c) const
    {
        RCOAL_ASSERT(f <= size && c <= size, "occupancy out of range");
        return g[f][c];
    }

  private:
    unsigned size;
    std::vector<std::vector<long double>> g;
};

/** Per-subwarp-size moments of N_{w,R}, cached for w = 1..N. */
struct SizeMoments
{
    std::vector<double> mean; ///< Index w.
    std::vector<double> var;

    SizeMoments(unsigned n, unsigned r) : mean(n + 1, 0.0), var(n + 1, 0.0)
    {
        for (unsigned w = 1; w <= n; ++w) {
            const CoalescedAccessDistribution dist(w, r);
            mean[w] = dist.mean();
            var[w] = dist.variance();
        }
    }
};

/**
 * Weight of a frequency-partition lambda: the probability that the block
 * frequencies of N uniform accesses over R blocks form this multiset.
 */
long double
frequencyWeight(const Partition &lambda, unsigned n, unsigned r)
{
    const long double vectors =
        numeric::vectorsOfPartition(lambda, r).toLongDouble();
    const long double assignments =
        numeric::threadAssignmentsOfPartition(lambda).toLongDouble();
    const long double total = BigUInt(r).pow(n).toLongDouble();
    return vectors * assignments / total;
}

double
rhoToNormalizedSamples(double rho)
{
    if (std::abs(rho) < 1e-9)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (rho * rho);
}

/**
 * Frequency multisets and their probabilities for (n, r), memoized:
 * the enumeration with exact big-integer weights costs seconds and is
 * shared by every defense analysis at the same (n, r).
 */
const std::vector<std::pair<Partition, long double>> &
frequencyPartitions(unsigned n, unsigned r)
{
    static std::map<std::pair<unsigned, unsigned>,
                    std::vector<std::pair<Partition, long double>>>
        cache;
    static std::mutex cache_mutex;
    std::scoped_lock lock(cache_mutex);
    auto [it, inserted] = cache.try_emplace({n, r});
    if (inserted) {
        long double total = 0.0L;
        numeric::forEachPartition(n, r, n, [&](const Partition &lambda) {
            const long double weight = frequencyWeight(lambda, n, r);
            total += weight;
            it->second.emplace_back(lambda, weight);
        });
        RCOAL_ASSERT(std::abs(static_cast<double>(total) - 1.0) < 1e-9,
                     "frequency weights sum to %.12f",
                     static_cast<double>(total));
    }
    return it->second;
}

} // namespace

double
expectedAccessesGivenFrequencies(std::span<const unsigned> frequencies,
                                 std::span<const unsigned> capacities)
{
    unsigned n = 0;
    for (unsigned c : capacities) {
        RCOAL_ASSERT(c > 0, "subwarp capacity must be positive");
        n += c;
    }
    unsigned freq_total = 0;
    for (unsigned f : frequencies)
        freq_total += f;
    RCOAL_ASSERT(freq_total == n,
                 "frequencies sum to %u but capacities to %u", freq_total,
                 n);
    const OccupancyTable table(n);
    long double sum = 0.0L;
    for (unsigned f : frequencies) {
        if (f == 0)
            continue;
        for (unsigned c : capacities)
            sum += table.value(f, c);
    }
    return static_cast<double>(sum);
}

SecurityResult
analyzeFss(const ModelParams &params)
{
    const SizeMoments moments(params.n, params.r);
    double mu = 0.0;
    double var = 0.0;
    for (unsigned c : fssCapacities(params.n, params.m)) {
        mu += moments.mean[c];
        var += moments.var[c];
    }
    SecurityResult result;
    result.muU = mu;
    result.sigmaU = std::sqrt(var);
    // The attacker replicates the deterministic partition exactly, so
    // U == U-hat: rho is 1 whenever U varies at all.
    result.rho = var > 1e-12 ? 1.0 : 0.0;
    result.normalizedSamples = rhoToNormalizedSamples(result.rho);
    return result;
}

SecurityResult
analyzeFssRts(const ModelParams &params)
{
    const unsigned n = params.n;
    const unsigned r = params.r;
    const SizeMoments moments(n, r);
    const OccupancyTable occupancy(n);
    const auto capacities = fssCapacities(n, params.m);

    // mu(U) and sigma(U) are unaffected by the random permutation
    // (Section V-B2): subwarp contents are iid uniform block draws.
    double mu = 0.0;
    double var = 0.0;
    for (unsigned c : capacities) {
        mu += moments.mean[c];
        var += moments.var[c];
    }

    // mu(U x U-hat) = sum over frequency multisets of P(F) mu(U|F)^2.
    // g-row sums per frequency value, shared across partitions.
    std::vector<long double> row(n + 1, 0.0L);
    for (unsigned f = 1; f <= n; ++f) {
        for (unsigned c : capacities)
            row[f] += occupancy.value(f, c);
    }

    long double cross = 0.0L;
    long double mu_check = 0.0L;
    for (const auto &[lambda, weight] : frequencyPartitions(n, r)) {
        long double mu_given_f = 0.0L;
        for (unsigned f : lambda)
            mu_given_f += row[f];
        cross += weight * mu_given_f * mu_given_f;
        mu_check += weight * mu_given_f;
    }
    RCOAL_ASSERT(std::abs(static_cast<double>(mu_check) - mu) < 1e-6,
                 "mu(U) mismatch: partition sum %.9f vs moments %.9f",
                 static_cast<double>(mu_check), mu);

    SecurityResult result;
    result.muU = mu;
    result.sigmaU = std::sqrt(var);
    if (var <= 1e-12) {
        result.rho = 0.0;
    } else {
        result.rho =
            static_cast<double>(cross - static_cast<long double>(mu) * mu) /
            var;
    }
    result.normalizedSamples = rhoToNormalizedSamples(result.rho);
    return result;
}

SecurityResult
analyzeRssRts(const ModelParams &params)
{
    const unsigned n = params.n;
    const unsigned r = params.r;
    const unsigned m = params.m;
    const SizeMoments moments(n, r);
    const OccupancyTable occupancy(n);

    // Enumerate the RSS size space W (compositions of n into m positive
    // parts) as partitions with composition-multiplicity weights.
    const long double total_compositions =
        numeric::compositionsCount(n, m).toLongDouble();

    double mu = 0.0;        // E[U]
    double mu_sq = 0.0;     // E[U^2]
    // h[f] = E_W[ sum_j g[f][w_j] ], the expected probability mass a
    // frequency-f block contributes across the random subwarp sizes.
    std::vector<long double> h(n + 1, 0.0L);
    long double pw_total = 0.0L;

    numeric::forEachPartitionExact(n, m, n, [&](const Partition &sizes) {
        const long double pw =
            numeric::compositionsOfPartition(sizes).toLongDouble() /
            total_compositions;
        pw_total += pw;
        double mu_w = 0.0;
        double var_w = 0.0;
        for (unsigned w : sizes) {
            mu_w += moments.mean[w];
            var_w += moments.var[w];
        }
        mu += static_cast<double>(pw) * mu_w;
        mu_sq += static_cast<double>(pw) * (var_w + mu_w * mu_w);
        for (unsigned f = 1; f <= n; ++f) {
            long double sum = 0.0L;
            for (unsigned w : sizes)
                sum += occupancy.value(f, w);
            h[f] += pw * sum;
        }
    });
    RCOAL_ASSERT(std::abs(static_cast<double>(pw_total) - 1.0) < 1e-9,
                 "size-space weights sum to %.12f",
                 static_cast<double>(pw_total));

    const double var = mu_sq - mu * mu;

    // mu(U x U-hat) over the frequency multisets, with
    // mu(U|F) = sum_f h[f] (RTS makes U|F and U-hat|F iid).
    long double cross = 0.0L;
    for (const auto &[lambda, weight] : frequencyPartitions(n, r)) {
        long double mu_given_f = 0.0L;
        for (unsigned f : lambda)
            mu_given_f += h[f];
        cross += weight * mu_given_f * mu_given_f;
    }

    SecurityResult result;
    result.muU = mu;
    result.sigmaU = var > 0.0 ? std::sqrt(var) : 0.0;
    if (var <= 1e-12) {
        result.rho = 0.0;
    } else {
        result.rho =
            static_cast<double>(cross - static_cast<long double>(mu) * mu) /
            var;
    }
    result.normalizedSamples = rhoToNormalizedSamples(result.rho);
    return result;
}

std::vector<TableTwoRow>
tableTwo(unsigned n, unsigned r, std::span<const unsigned> subwarp_counts)
{
    static constexpr std::array<unsigned, 6> kDefault = {1, 2, 4,
                                                         8, 16, 32};
    std::vector<unsigned> counts(subwarp_counts.begin(),
                                 subwarp_counts.end());
    if (counts.empty())
        counts.assign(kDefault.begin(), kDefault.end());

    std::vector<TableTwoRow> rows;
    rows.reserve(counts.size());
    for (unsigned m : counts) {
        TableTwoRow row;
        row.m = m;
        const ModelParams params{n, r, m};
        row.fss = analyzeFss(params);
        row.fssRts = analyzeFssRts(params);
        row.rssRts = analyzeRssRts(params);
        rows.push_back(row);
    }
    return rows;
}

} // namespace rcoal::theory
