/**
 * @file
 * Section V analytical security model: exact correlation rho between the
 * actual and estimated coalesced-access vectors under each defense, and
 * the derived (normalized) sample count S for a successful attack.
 *
 * The headline result is Table II (N = 32 threads, R = 16 memory
 * blocks): FSS keeps rho = 1 for M < N, while FSS+RTS and RSS+RTS drive
 * rho down as the number of subwarps M grows, multiplying the samples an
 * attacker needs by 6x-961x.
 *
 * Implementation notes: the paper's sums over the frequency set F (all
 * R^N thread-to-block assignments grouped by block frequencies) and over
 * the RSS size space W (compositions of N into M positive parts) are
 * astronomically large when enumerated directly; every summand is
 * symmetric under relabeling of blocks/subwarps, so both sums collapse
 * to integer partitions with exact multiplicity weights (a few thousand
 * terms; see numeric/partitions.hpp).
 */

#ifndef RCOAL_THEORY_SECURITY_MODEL_HPP
#define RCOAL_THEORY_SECURITY_MODEL_HPP

#include <span>
#include <string>
#include <vector>

#include "rcoal/theory/coalesced_distribution.hpp"

namespace rcoal::theory {

/** Problem parameters of the analytical model. */
struct ModelParams
{
    unsigned n = 32; ///< Threads per warp (N).
    unsigned r = 16; ///< Memory blocks per lookup table (R).
    unsigned m = 1;  ///< Number of subwarps (M).
};

/** rho and sample counts for one defense at one M. */
struct SecurityResult
{
    double rho = 0.0;        ///< corr(measurement, estimation).
    double muU = 0.0;        ///< E[U], expected coalesced accesses.
    double sigmaU = 0.0;     ///< stddev(U).
    double normalizedSamples = 0.0; ///< S relative to FSS M=1 (1/rho^2).
                                    ///< +inf when rho == 0.
};

/**
 * Definition 3: expected coalesced accesses E[M_{F,C}] given block
 * frequencies @p frequencies (non-negative, summing to N) and subwarp
 * capacities @p capacities (positive, summing to N), under random
 * thread-to-subwarp assignment.
 */
double expectedAccessesGivenFrequencies(
    std::span<const unsigned> frequencies,
    std::span<const unsigned> capacities);

/** FSS: deterministic partition; rho is 1 until sigma(U) hits 0 at M=N. */
SecurityResult analyzeFss(const ModelParams &params);

/** FSS+RTS: fixed sizes, random thread allocation. */
SecurityResult analyzeFssRts(const ModelParams &params);

/** RSS+RTS: skewed random sizes and random thread allocation. */
SecurityResult analyzeRssRts(const ModelParams &params);

/** One row of Table II. */
struct TableTwoRow
{
    unsigned m = 0;
    SecurityResult fss;
    SecurityResult fssRts;
    SecurityResult rssRts;
};

/**
 * Reproduce Table II: N=32, R=16, M in {1, 2, 4, 8, 16, 32} by default.
 */
std::vector<TableTwoRow>
tableTwo(unsigned n = 32, unsigned r = 16,
         std::span<const unsigned> subwarp_counts = {});

} // namespace rcoal::theory

#endif // RCOAL_THEORY_SECURITY_MODEL_HPP
