/**
 * @file
 * Definition 1 of the paper: the distribution of the number of coalesced
 * accesses when m threads each access one of n memory blocks uniformly.
 *
 *   P(N_{m,n} = i) = (1 / n^m) * n!/(n-i)! * S(m, i)
 *
 * where S is the Stirling number of the second kind. Computed exactly
 * with big integers and exposed both as exact rationals and doubles.
 */

#ifndef RCOAL_THEORY_COALESCED_DISTRIBUTION_HPP
#define RCOAL_THEORY_COALESCED_DISTRIBUTION_HPP

#include <vector>

#include "rcoal/numeric/big_rational.hpp"

namespace rcoal::theory {

/**
 * The exact distribution N_{m,n} of coalesced accesses from m uniform
 * thread accesses over n memory blocks.
 */
class CoalescedAccessDistribution
{
  public:
    /** @param m threads, @param n memory blocks; both positive. */
    CoalescedAccessDistribution(unsigned m, unsigned n);

    unsigned threads() const { return mThreads; }
    unsigned blocks() const { return nBlocks; }

    /** Exact P(N = i); zero outside [1, min(m, n)]. */
    numeric::BigRational pmfExact(unsigned i) const;

    /** P(N = i) as a double. */
    double pmf(unsigned i) const;

    /** Exact mean. */
    const numeric::BigRational &meanExact() const { return mu; }

    /** Exact second moment E[N^2]. */
    const numeric::BigRational &secondMomentExact() const { return mu2; }

    /** Mean as a double. */
    double mean() const { return mu.toDouble(); }

    /** Variance as a double. */
    double variance() const;

    /**
     * Closed-form mean n * (1 - (1 - 1/n)^m), used as a cross-check of
     * the Stirling-based computation.
     */
    static double meanClosedForm(unsigned m, unsigned n);

  private:
    unsigned mThreads;
    unsigned nBlocks;
    std::vector<numeric::BigRational> probabilities; ///< Index i.
    numeric::BigRational mu;
    numeric::BigRational mu2;
};

} // namespace rcoal::theory

#endif // RCOAL_THEORY_COALESCED_DISTRIBUTION_HPP
