/**
 * @file
 * Unit tests for the AES GPU kernel builder.
 */

#include <gtest/gtest.h>

#include "rcoal/aes/aes.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::workloads {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(AesKernel, CiphertextMatchesReferenceAes)
{
    Rng rng(1);
    const auto pts = randomPlaintext(32, rng);
    const AesGpuKernel kernel(pts, kKey, 32);
    const aes::Aes reference(kKey);
    ASSERT_EQ(kernel.ciphertext().size(), 32u);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(kernel.ciphertext()[i], reference.encryptBlock(pts[i]));
}

TEST(AesKernel, OneWarpPer32Lines)
{
    Rng rng(2);
    EXPECT_EQ(AesGpuKernel(randomPlaintext(32, rng), kKey, 32).numWarps(),
              1u);
    EXPECT_EQ(AesGpuKernel(randomPlaintext(64, rng), kKey, 32).numWarps(),
              2u);
    EXPECT_EQ(
        AesGpuKernel(randomPlaintext(1024, rng), kKey, 32).numWarps(),
        32u);
}

TEST(AesKernel, PartialWarpHasInactiveLanes)
{
    Rng rng(3);
    const AesGpuKernel kernel(randomPlaintext(40, rng), kKey, 32);
    EXPECT_EQ(kernel.numWarps(), 2u);
    const auto &trace = kernel.trace(1);
    // First instruction: plaintext load with 8 active lanes.
    unsigned active = 0;
    for (const auto &lane : trace[0].lanes)
        active += lane.active ? 1 : 0;
    EXPECT_EQ(active, 8u);
}

TEST(AesKernel, TraceStructure)
{
    Rng rng(4);
    const AesGpuKernel kernel(randomPlaintext(32, rng), kKey, 32);
    const auto &trace = kernel.trace(0);
    // 1 plaintext load + 1 alu + 10 rounds x (16 loads + 1 alu) +
    // 1 store = 2 + 170 + 1 = 173 instructions.
    ASSERT_EQ(trace.size(), 173u);
    EXPECT_EQ(trace[0].op, sim::WarpInstruction::Op::Load);
    EXPECT_EQ(trace[0].tag, sim::AccessTag::PlaintextLoad);
    EXPECT_EQ(trace[1].op, sim::WarpInstruction::Op::Alu);
    EXPECT_TRUE(trace[1].waitAllLoads);
    EXPECT_EQ(trace.back().op, sim::WarpInstruction::Op::Store);
    EXPECT_EQ(trace.back().tag, sim::AccessTag::CiphertextStore);
}

TEST(AesKernel, RoundTagging)
{
    Rng rng(5);
    const AesGpuKernel kernel(randomPlaintext(32, rng), kKey, 32);
    const auto &trace = kernel.trace(0);
    unsigned round_lookups = 0;
    unsigned last_round_lookups = 0;
    for (const auto &instr : trace) {
        if (instr.tag == sim::AccessTag::RoundLookup)
            ++round_lookups;
        else if (instr.tag == sim::AccessTag::LastRoundLookup)
            ++last_round_lookups;
    }
    EXPECT_EQ(round_lookups, 9u * 16u);
    EXPECT_EQ(last_round_lookups, 16u);
}

TEST(AesKernel, LookupAddressesFallInsideTables)
{
    Rng rng(6);
    const auto layout = AesMemoryLayout::standard();
    const AesGpuKernel kernel(randomPlaintext(32, rng), kKey, 32,
                              layout);
    for (const auto &instr : kernel.trace(0)) {
        if (instr.tag != sim::AccessTag::RoundLookup &&
            instr.tag != sim::AccessTag::LastRoundLookup) {
            continue;
        }
        for (const auto &lane : instr.lanes) {
            if (!lane.active)
                continue;
            EXPECT_GE(lane.addr, layout.tableBase[0]);
            EXPECT_LT(lane.addr, layout.tableBase[4] + 1024);
            EXPECT_EQ(lane.size, 4u);
            EXPECT_EQ((lane.addr - layout.tableBase[0]) % 4, 0u);
        }
    }
}

TEST(AesKernel, LastRoundAddressesUseT4Table)
{
    Rng rng(7);
    const auto layout = AesMemoryLayout::standard();
    const AesGpuKernel kernel(randomPlaintext(32, rng), kKey, 32,
                              layout);
    for (const auto &instr : kernel.trace(0)) {
        if (instr.tag != sim::AccessTag::LastRoundLookup)
            continue;
        for (const auto &lane : instr.lanes) {
            EXPECT_GE(lane.addr, layout.tableBase[4]);
            EXPECT_LT(lane.addr, layout.tableBase[4] + 1024);
        }
    }
}

TEST(AesKernel, LanesCarrySequentialLineMapping)
{
    // Section II-B: line-to-thread mapping is sequential and
    // deterministic.
    Rng rng(8);
    const auto layout = AesMemoryLayout::standard();
    const AesGpuKernel kernel(randomPlaintext(64, rng), kKey, 32,
                              layout);
    for (WarpId w = 0; w < 2; ++w) {
        const auto &plaintext_load = kernel.trace(w)[0];
        for (unsigned t = 0; t < 32; ++t) {
            EXPECT_EQ(plaintext_load.lanes[t].addr,
                      layout.plaintextBase + (Addr{w} * 32 + t) * 16);
        }
    }
}

TEST(AesKernel, StandardLayoutHasDisjointTables)
{
    const auto layout = AesMemoryLayout::standard();
    for (unsigned t = 1; t < 5; ++t)
        EXPECT_EQ(layout.tableBase[t], layout.tableBase[t - 1] + 1024);
    EXPECT_GT(layout.plaintextBase, layout.tableBase[4] + 1024);
    EXPECT_GT(layout.ciphertextBase, layout.plaintextBase);
}

TEST(RandomPlaintext, DeterministicPerSeed)
{
    Rng a(9);
    Rng b(9);
    EXPECT_EQ(randomPlaintext(8, a), randomPlaintext(8, b));
}

TEST(RandomKey, DeterministicPerSeed)
{
    Rng a(10);
    Rng b(10);
    EXPECT_EQ(randomKey128(a), randomKey128(b));
}

} // namespace
} // namespace rcoal::workloads
