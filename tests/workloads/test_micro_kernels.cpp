/**
 * @file
 * Unit tests for the synthetic microbenchmark kernels.
 */

#include <gtest/gtest.h>

#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::workloads {
namespace {

TEST(MicroKernels, StreamingShape)
{
    const auto kernel = makeStreamingKernel(3, 5, 32);
    EXPECT_EQ(kernel->numWarps(), 3u);
    // 5 loads + 1 join per warp.
    EXPECT_EQ(kernel->trace(0).size(), 6u);
    EXPECT_EQ(kernel->name(), "streaming");
}

TEST(MicroKernels, StreamingAddressesAreContiguous)
{
    const auto kernel = makeStreamingKernel(1, 2, 32, 0x1000);
    const auto &load = kernel->trace(0)[0];
    for (unsigned t = 0; t < 32; ++t)
        EXPECT_EQ(load.lanes[t].addr, 0x1000u + t * 4);
    // Second load continues past the first.
    EXPECT_EQ(kernel->trace(0)[1].lanes[0].addr, 0x1000u + 32 * 4);
}

TEST(MicroKernels, RandomKernelStaysInTable)
{
    Rng rng(1);
    const auto kernel = makeRandomKernel(2, 10, 32, 64, rng, 0x2000);
    for (WarpId w = 0; w < 2; ++w) {
        for (const auto &instr : kernel->trace(w)) {
            for (const auto &lane : instr.lanes) {
                EXPECT_GE(lane.addr, 0x2000u);
                EXPECT_LT(lane.addr, 0x2000u + 64 * 4);
            }
        }
    }
}

TEST(MicroKernels, StridedAddressesUseStride)
{
    const auto kernel = makeStridedKernel(1, 1, 8, 128, 0x0);
    const auto &load = kernel->trace(0)[0];
    for (unsigned t = 0; t < 8; ++t)
        EXPECT_EQ(load.lanes[t].addr, Addr{t} * 128);
}

TEST(MicroKernels, AllLanesActive)
{
    Rng rng(2);
    for (const auto &kernel :
         {makeStreamingKernel(1, 3, 32),
          makeRandomKernel(1, 3, 32, 128, rng),
          makeStridedKernel(1, 3, 32, 32)}) {
        for (const auto &instr : kernel->trace(0)) {
            for (const auto &lane : instr.lanes)
                EXPECT_TRUE(lane.active);
        }
    }
}

} // namespace
} // namespace rcoal::workloads
