/**
 * @file
 * Tests for the SIMT-stack-driven divergent kernel.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::workloads {
namespace {

TEST(DivergentKernel, SidesPartitionTheWarp)
{
    Rng rng(21);
    const auto kernel = makeDivergentKernel(4, 32, rng);
    ASSERT_EQ(kernel->numWarps(), 4u);
    for (WarpId w = 0; w < 4; ++w) {
        const auto &trace = kernel->trace(w);
        // Loads sit at even indices (each followed by a join ALU).
        std::vector<const sim::WarpInstruction *> loads;
        for (const auto &instr : trace) {
            if (instr.op == sim::WarpInstruction::Op::Load)
                loads.push_back(&instr);
        }
        ASSERT_EQ(loads.size(), 3u) << "warp " << w;
        std::array<unsigned, 3> active{};
        for (unsigned i = 0; i < 3; ++i) {
            for (const auto &lane : loads[i]->lanes)
                active[i] += lane.active ? 1 : 0;
        }
        // The two sides partition the warp; the reconverged load is
        // full width.
        EXPECT_EQ(active[0] + active[1], 32u);
        EXPECT_EQ(active[2], 32u);
        // With random parity data both sides are almost surely
        // non-empty.
        EXPECT_GT(active[0], 0u);
        EXPECT_GT(active[1], 0u);
        // Lanes active on side 0 are inactive on side 1 and vice versa.
        for (unsigned t = 0; t < 32; ++t) {
            EXPECT_NE(loads[0]->lanes[t].active,
                      loads[1]->lanes[t].active)
                << "warp " << w << " lane " << t;
        }
    }
}

TEST(DivergentKernel, RunsOnTheGpu)
{
    Rng rng(22);
    const auto kernel = makeDivergentKernel(6, 32, rng);
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 8;
    const auto stats = sim::Gpu(cfg).launch(*kernel);
    EXPECT_GT(stats.cycles, 0u);
    // 32 active lanes per warp across the two sides + 32 reconverged:
    // lane requests = 64 per warp.
    EXPECT_EQ(stats.tagStats(sim::AccessTag::Generic).laneRequests,
              6u * 64u);
}

TEST(DivergentKernel, DivergenceCostsCoalescing)
{
    // The same addresses issued convergently coalesce better than the
    // two-sided divergent version under subwarp policies, because each
    // side presents fewer lanes to merge.
    Rng rng(23);
    const auto kernel = makeDivergentKernel(8, 32, rng);
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 8;
    const auto baseline = sim::Gpu(cfg).launch(*kernel);
    cfg.policy = core::CoalescingPolicy::fss(8);
    const auto fss = sim::Gpu(cfg).launch(*kernel);
    EXPECT_GT(fss.coalescedAccesses, baseline.coalescedAccesses);
}

} // namespace
} // namespace rcoal::workloads
