/**
 * @file
 * Integration tests: the full victim + attacker pipeline, checking the
 * paper's qualitative results end to end. Sample counts are kept small
 * so the suite stays fast; the bench binaries run the full-size
 * experiments.
 */

#include <gtest/gtest.h>

#include "rcoal/aes/key_schedule.hpp"
#include "rcoal/attack/correlation_attack.hpp"
#include "rcoal/common/stats.hpp"

namespace rcoal {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
configWithPolicy(core::CoalescingPolicy policy)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.policy = policy;
    return cfg;
}

std::vector<attack::EncryptionObservation>
collect(core::CoalescingPolicy policy, unsigned samples,
        unsigned lines = 32, std::uint64_t seed = 7)
{
    attack::EncryptionService service(configWithPolicy(policy), kKey);
    Rng rng(seed);
    return service.collectSamples(samples, lines, rng);
}

attack::KeyAttackResult
runAttack(const std::vector<attack::EncryptionObservation> &obs,
          core::CoalescingPolicy assumed,
          attack::MeasurementVector measurement =
              attack::MeasurementVector::LastRoundTime)
{
    attack::AttackConfig cfg;
    cfg.assumedPolicy = assumed;
    cfg.measurement = measurement;
    attack::CorrelationAttack attacker(cfg);
    const aes::KeySchedule ks(kKey, aes::KeySize::Aes128);
    return attacker.attackKey(obs, ks.roundKey(10));
}

TEST(EndToEnd, BaselineAttackRecoversKeyByteZero)
{
    // Fig. 6a: with coalescing enabled the correct value of key byte 0
    // stands out. At this modest sample count the correct guess must
    // rank near the top; full 16/16 recovery (at 400 samples) is
    // exercised by RecoveredKeyInvertsToOriginal below.
    const auto obs = collect(core::CoalescingPolicy::baseline(), 120);
    const auto result =
        runAttack(obs, core::CoalescingPolicy::baseline());
    EXPECT_LE(result.bytes[0].rankOfCorrect, 5u);
    EXPECT_GT(result.bytes[0].correctGuessCorrelation, 0.15);
    // Most bytes recover even at this modest sample count.
    EXPECT_GE(result.bytesRecovered, 6u);
}

TEST(EndToEnd, DisabledCoalescingDefeatsBaselineAttack)
{
    // Fig. 6b: without coalescing the correlation collapses to ~0 and
    // nothing is recovered.
    const auto obs = collect(core::CoalescingPolicy::disabled(), 60);
    const auto result =
        runAttack(obs, core::CoalescingPolicy::baseline());
    EXPECT_LE(result.bytesRecovered, 1u);
    EXPECT_NEAR(result.avgCorrectCorrelation, 0.0, 0.05);
    // The observed last-round accesses are constant at 512.
    for (const auto &o : obs)
        EXPECT_EQ(o.lastRoundAccesses, 512u);
}

TEST(EndToEnd, FssAttackDefeatsFssDefense)
{
    // Fig. 8: plain FSS falls to the subwarp-aware Algorithm 1.
    const auto obs = collect(core::CoalescingPolicy::fss(4), 120);
    const auto result = runAttack(obs, core::CoalescingPolicy::fss(4));
    EXPECT_GT(result.avgCorrectCorrelation, 0.12);
    EXPECT_GE(result.bytesRecovered, 3u);
}

TEST(EndToEnd, BaselineAttackFailsAgainstFss)
{
    // Fig. 7b: the attacker assuming num-subwarp = 1 loses correlation
    // against an FSS-enabled GPU as M grows.
    const auto obs = collect(core::CoalescingPolicy::fss(8), 60);
    const auto naive = runAttack(obs, core::CoalescingPolicy::baseline());
    const auto aware = runAttack(obs, core::CoalescingPolicy::fss(8));
    EXPECT_LT(naive.avgCorrectCorrelation,
              aware.avgCorrectCorrelation);
}

TEST(EndToEnd, RtsDefeatsTheCorrespondingAttack)
{
    // Fig. 12: FSS+RTS resists even the RTS-aware attacker.
    const auto obs = collect(core::CoalescingPolicy::fss(8, true), 60);
    const auto result =
        runAttack(obs, core::CoalescingPolicy::fss(8, true));
    EXPECT_LT(result.avgCorrectCorrelation, 0.1);
    EXPECT_LE(result.bytesRecovered, 2u);
}

TEST(EndToEnd, RssDefeatsTheCorrespondingAttack)
{
    // Fig. 13.
    const auto obs = collect(core::CoalescingPolicy::rss(4), 60);
    const auto result = runAttack(obs, core::CoalescingPolicy::rss(4));
    EXPECT_LT(result.avgCorrectCorrelation, 0.1);
}

TEST(EndToEnd, RssRtsDefeatsTheCorrespondingAttack)
{
    // Fig. 14.
    const auto obs = collect(core::CoalescingPolicy::rss(4, true), 60);
    const auto result =
        runAttack(obs, core::CoalescingPolicy::rss(4, true));
    EXPECT_LT(result.avgCorrectCorrelation, 0.1);
}

TEST(EndToEnd, ExecutionTimeIncreasesWithSubwarps)
{
    // Fig. 7a / Fig. 16b: more subwarps -> more accesses -> more time.
    double prev_time = 0.0;
    std::uint64_t prev_acc = 0;
    for (unsigned m : {1u, 4u, 16u}) {
        const auto policy = m == 1 ? core::CoalescingPolicy::baseline()
                                   : core::CoalescingPolicy::fss(m);
        const auto obs = collect(policy, 5);
        double time = 0.0;
        std::uint64_t acc = 0;
        for (const auto &o : obs) {
            time += o.totalTime;
            acc += o.totalAccesses;
        }
        EXPECT_GT(time, prev_time) << "M=" << m;
        EXPECT_GT(acc, prev_acc) << "M=" << m;
        prev_time = time;
        prev_acc = acc;
    }
}

TEST(EndToEnd, RssIsFasterThanFss)
{
    // Section IV-B / Fig. 16: skewed sizing recovers coalescing
    // opportunities, so RSS generates fewer accesses than FSS.
    for (unsigned m : {4u, 8u}) {
        const auto fss = collect(core::CoalescingPolicy::fss(m), 5);
        const auto rss = collect(core::CoalescingPolicy::rss(m), 5);
        std::uint64_t fss_acc = 0;
        std::uint64_t rss_acc = 0;
        for (unsigned i = 0; i < 5; ++i) {
            fss_acc += fss[i].totalAccesses;
            rss_acc += rss[i].totalAccesses;
        }
        EXPECT_LT(rss_acc, fss_acc) << "M=" << m;
    }
}

TEST(EndToEnd, RtsIsPerformanceNeutral)
{
    // Fig. 16: RTS does not change the number of accesses, only their
    // grouping; time stays within a few percent.
    const auto fss = collect(core::CoalescingPolicy::fss(8), 5);
    const auto rts = collect(core::CoalescingPolicy::fss(8, true), 5);
    double fss_time = 0.0;
    double rts_time = 0.0;
    for (unsigned i = 0; i < 5; ++i) {
        fss_time += fss[i].totalTime;
        rts_time += rts[i].totalTime;
    }
    EXPECT_NEAR(rts_time / fss_time, 1.0, 0.05);
}

TEST(EndToEnd, DisablingCoalescingIsTheWorstCase)
{
    // Section III: disabling coalescing costs far more than any
    // reasonable subwarp count; it matches FSS with M = 32.
    const auto base = collect(core::CoalescingPolicy::baseline(), 3);
    const auto off = collect(core::CoalescingPolicy::disabled(), 3);
    const auto fss32 = collect(core::CoalescingPolicy::fss(32), 3);
    EXPECT_GT(off[0].totalAccesses, 2 * base[0].totalAccesses);
    EXPECT_EQ(off[0].totalAccesses, fss32[0].totalAccesses);
    EXPECT_GT(off[0].totalTime, 1.5 * base[0].totalTime);
}

TEST(EndToEnd, CaseStudy1024LinesAccessesScale)
{
    // Fig. 18 methodology smoke test at reduced sample count: the
    // noise-free measurement (observed last-round accesses) still shows
    // the FSS attack succeeding and RSS+RTS resisting.
    const unsigned kSamples = 30;
    const auto fss_obs =
        collect(core::CoalescingPolicy::fss(4), kSamples, 1024);
    const auto fss = runAttack(
        fss_obs, core::CoalescingPolicy::fss(4),
        attack::MeasurementVector::ObservedLastRoundAccesses);
    const auto rss_obs =
        collect(core::CoalescingPolicy::rss(4, true), kSamples, 1024);
    const auto rss = runAttack(
        rss_obs, core::CoalescingPolicy::rss(4, true),
        attack::MeasurementVector::ObservedLastRoundAccesses);
    // The per-byte correlation is diluted by ~1/sqrt(16) relative to
    // the paper's single-byte theoretical channel (the measured
    // whole-warp access count aggregates 16 independent per-byte
    // instructions), so the FSS attack tops out near 0.25 here.
    EXPECT_GT(fss.avgCorrectCorrelation, 0.2);
    EXPECT_LT(rss.avgCorrectCorrelation, 0.15);
    // 1024 lines = 32 warps of last-round lookups.
    EXPECT_GT(fss_obs[0].lastRoundAccesses,
              32u * 16u * 4u); // well above the absolute floor
}

TEST(EndToEnd, AttackGeneralizesToAes256LastRound)
{
    // Eq. 3 is key-size agnostic: the correlation attack recovers
    // AES-256 last-round key bytes exactly as for AES-128 (the paper's
    // "without losing generality"). Only the key-schedule inversion
    // step is 128-specific.
    const std::array<std::uint8_t, 32> key256 = {
        0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca, 0x71, 0xbe,
        0x2b, 0x73, 0xae, 0xf0, 0x85, 0x7d, 0x77, 0x81,
        0x1f, 0x35, 0x2c, 0x07, 0x3b, 0x61, 0x08, 0xd7,
        0x2d, 0x98, 0x10, 0xa3, 0x09, 0x14, 0xdf, 0xf4};
    attack::EncryptionService service(
        configWithPolicy(core::CoalescingPolicy::baseline()), key256);
    Rng rng(7);
    const auto obs = service.collectSamples(120, 32, rng);
    attack::AttackConfig cfg;
    attack::CorrelationAttack attacker(cfg);
    const auto result = attacker.attackKey(obs, service.lastRoundKey());
    EXPECT_GE(result.bytesRecovered, 6u);
    EXPECT_GT(result.avgCorrectCorrelation, 0.15);
}

TEST(EndToEnd, RecoveredKeyInvertsToOriginal)
{
    // The full chain: recover the last round key, invert the schedule,
    // obtain the original AES key (Section II-C).
    const auto obs = collect(core::CoalescingPolicy::baseline(), 400);
    const auto result =
        runAttack(obs, core::CoalescingPolicy::baseline());
    ASSERT_TRUE(result.fullKeyRecovered());
    const aes::Block original =
        aes::invertFromLastRoundKey(result.recoveredLastRoundKey);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(original[i], kKey[i]);
}

} // namespace
} // namespace rcoal
