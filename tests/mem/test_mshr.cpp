/**
 * @file
 * Unit tests for the shared MSHR table (used by both the per-SM L1 and
 * the per-partition L2 front ends).
 */

#include <gtest/gtest.h>

#include "rcoal/mem/mshr.hpp"

namespace rcoal::mem {
namespace {

sim::MemoryAccess
makeAccess(std::uint64_t id, Addr block_addr)
{
    sim::MemoryAccess access;
    access.id = id;
    access.blockAddr = block_addr;
    access.bytes = 64;
    return access;
}

TEST(MemMshr, AllocateTracksPendingBlocks)
{
    MshrTable mshr(4);
    EXPECT_FALSE(mshr.isPending(0x1000));
    EXPECT_TRUE(mshr.canAllocate());

    mshr.allocate(0x1000, makeAccess(1, 0x1000));
    EXPECT_TRUE(mshr.isPending(0x1000));
    EXPECT_FALSE(mshr.isPending(0x2000));
    EXPECT_EQ(mshr.occupancy(), 1u);
}

TEST(MemMshr, MergeCountsWaitersAndBumpsMergeCounter)
{
    MshrTable mshr(4);
    mshr.allocate(0x1000, makeAccess(1, 0x1000));
    EXPECT_EQ(mshr.merge(0x1000, makeAccess(2, 0x1000)), 2u);
    EXPECT_EQ(mshr.merge(0x1000, makeAccess(3, 0x1000)), 3u);
    EXPECT_EQ(mshr.merges(), 2u);
    EXPECT_EQ(mshr.occupancy(), 1u); // Merges share the entry.
}

TEST(MemMshr, CompleteReturnsPrimaryFirstAndFreesEntry)
{
    MshrTable mshr(4);
    mshr.allocate(0x1000, makeAccess(1, 0x1000));
    mshr.merge(0x1000, makeAccess(2, 0x1000));
    mshr.merge(0x1000, makeAccess(3, 0x1000));

    const auto waiting = mshr.complete(0x1000);
    ASSERT_EQ(waiting.size(), 3u);
    EXPECT_EQ(waiting[0].id, 1u);
    EXPECT_EQ(waiting[1].id, 2u);
    EXPECT_EQ(waiting[2].id, 3u);
    EXPECT_FALSE(mshr.isPending(0x1000));
    EXPECT_EQ(mshr.occupancy(), 0u);
}

TEST(MemMshr, CapacityBoundsDistinctBlocks)
{
    MshrTable mshr(2);
    mshr.allocate(0x1000, makeAccess(1, 0x1000));
    mshr.allocate(0x2000, makeAccess(2, 0x2000));
    EXPECT_FALSE(mshr.canAllocate());

    // Merges to pending blocks are still possible when full.
    EXPECT_EQ(mshr.merge(0x1000, makeAccess(3, 0x1000)), 2u);

    (void)mshr.complete(0x2000);
    EXPECT_TRUE(mshr.canAllocate());
}

TEST(MemMshr, IndependentBlocksDoNotInteract)
{
    MshrTable mshr(4);
    mshr.allocate(0x1000, makeAccess(1, 0x1000));
    mshr.allocate(0x2000, makeAccess(2, 0x2000));
    mshr.merge(0x2000, makeAccess(3, 0x2000));

    const auto first = mshr.complete(0x1000);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].id, 1u);
    EXPECT_TRUE(mshr.isPending(0x2000));

    const auto second = mshr.complete(0x2000);
    ASSERT_EQ(second.size(), 2u);
    EXPECT_EQ(second[0].id, 2u);
}

} // namespace
} // namespace rcoal::mem
