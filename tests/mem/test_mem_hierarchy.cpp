/**
 * @file
 * Cross-checks of the rewired memory hierarchy: for every cache cell
 * ({L1, L2, L1+L2+MSHR}) and every DRAM backend (GDDR5/GDDR6/HBM2),
 * cycle skipping must be byte-identical to single-stepping, the
 * parameterized protocol checker must stay quiet, and repeated runs
 * must be deterministic.
 */

#include <array>
#include <string>

#include <gtest/gtest.h>

#include "rcoal/attack/encryption_service.hpp"
#include "rcoal/mem/dram_backend.hpp"
#include "rcoal/sim/gpu.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::mem {
namespace {

using sim::GpuConfig;
using sim::KernelStats;

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

const sim::DramBackendKind kAllKinds[] = {
    sim::DramBackendKind::Gddr5,
    sim::DramBackendKind::Gddr6,
    sim::DramBackendKind::Hbm2,
};

/** The cache cells the byte-identity contract must hold for. */
struct CacheCell
{
    const char *name;
    bool l1, l2, mshr;
};

const CacheCell kCells[] = {
    {"l1", true, false, false},
    {"l2", false, true, false},
    {"l1+l2+mshr", true, true, true},
};

GpuConfig
smallConfig(sim::DramBackendKind kind, const CacheCell &cell)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.dramBackend = kind;
    cfg.l1Enabled = cell.l1;
    cfg.l2Enabled = cell.l2;
    cfg.mshrEnabled = cell.mshr;
    return cfg;
}

KernelStats
launchAes(GpuConfig cfg, unsigned lines = 16)
{
    sim::Gpu gpu(cfg);
    Rng rng = Rng::stream(7, 0);
    const auto plaintext = workloads::randomPlaintext(lines, rng);
    const workloads::AesGpuKernel kernel(plaintext, kKey, cfg.warpSize);
    return gpu.launch(kernel);
}

void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.coalescedAccesses, b.coalescedAccesses) << label;
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << label;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << label;
    EXPECT_EQ(a.dramActivates, b.dramActivates) << label;
    EXPECT_EQ(a.dramPrecharges, b.dramPrecharges) << label;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << label;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l1SectorMisses, b.l1SectorMisses) << label;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.l2SectorMisses, b.l2SectorMisses) << label;
    EXPECT_EQ(a.mshrMerges, b.mshrMerges) << label;
    EXPECT_EQ(a.l2MshrMerges, b.l2MshrMerges) << label;
    EXPECT_EQ(a.prtStallCycles, b.prtStallCycles) << label;
    EXPECT_EQ(a.icnStallCycles, b.icnStallCycles) << label;
}

TEST(MemHierarchy, CycleSkippingByteIdenticalPerCellAndBackend)
{
    for (const auto kind : kAllKinds) {
        for (const auto &cell : kCells) {
            const std::string label = std::string(
                dramBackendKindName(kind)) + " " + cell.name;
            GpuConfig cfg = smallConfig(kind, cell);

            cfg.cycleSkipping = false;
            const KernelStats stepped = launchAes(cfg);
            cfg.cycleSkipping = true;
            const KernelStats skipped = launchAes(cfg);

            expectIdenticalStats(stepped, skipped, label);
        }
    }
}

TEST(MemHierarchy, RepeatedRunsAreDeterministic)
{
    for (const auto kind : kAllKinds) {
        const GpuConfig cfg = smallConfig(kind, kCells[2]);
        const std::string label = dramBackendKindName(kind);
        expectIdenticalStats(launchAes(cfg), launchAes(cfg), label);
    }
}

TEST(MemHierarchy, CachesReduceDramTrafficWithoutChangingResults)
{
    // A cached run must (a) produce the same ciphertexts — caches are
    // timing-only in this model — and (b) activate DRAM rows no more
    // often than the uncached run.
    for (const auto kind : kAllKinds) {
        GpuConfig cfg = smallConfig(kind, kCells[2]);
        const KernelStats cached = launchAes(cfg);
        cfg.l1Enabled = cfg.l2Enabled = cfg.mshrEnabled = false;
        const KernelStats uncached = launchAes(cfg);

        const std::string label = dramBackendKindName(kind);
        EXPECT_GT(cached.l1Hits + cached.l2Hits, 0u) << label;
        EXPECT_LE(cached.dramActivates, uncached.dramActivates) << label;
        EXPECT_EQ(cached.coalescedAccesses, uncached.coalescedAccesses)
            << label;
    }
}

TEST(MemHierarchy, BackendsSatisfyProtocolCheckerUnderSkipping)
{
    // Panic-mode checkers parameterized per backend, refresh on so the
    // lowest-frequency rule is exercised; skipping must never reorder
    // around a bank-group or pseudo-channel obligation.
    for (const auto kind : kAllKinds) {
        for (const bool skipping : {false, true}) {
            GpuConfig cfg = smallConfig(kind, kCells[2]);
            cfg.refreshEnabled = true;
            cfg.cycleSkipping = skipping;
            sim::GpuMachine machine(cfg);
            machine.enableDramChecking();

            Rng rng = Rng::stream(7, 0);
            const auto plaintext = workloads::randomPlaintext(16, rng);
            const workloads::AesGpuKernel kernel(plaintext, kKey,
                                                 cfg.warpSize);
            const auto id = machine.launchStream(
                kernel, sim::SmRange{0, cfg.numSms},
                /*rng_stream_index=*/1);
            machine.runUntilDone(id);
            (void)machine.take(id);

            std::uint64_t commands = 0;
            for (const auto &checker : machine.dramCheckers())
                commands += checker->commandsChecked();
            EXPECT_GT(commands, 0u)
                << dramBackendKindName(kind) << " skipping " << skipping;
        }
    }
}

TEST(MemHierarchy, AttackObservationsIdenticalAcrossSkipModes)
{
    // The full parallel collection path (thread pool + caches + a
    // group-aware backend): observations must not depend on the
    // skipping mode. CI additionally diffs RCOAL_THREADS=1 vs 8.
    GpuConfig cfg = smallConfig(sim::DramBackendKind::Hbm2, kCells[2]);

    cfg.cycleSkipping = false;
    const auto stepped = attack::EncryptionService::collectSamplesParallel(
        cfg, kKey, /*samples=*/4, /*lines=*/16, /*plaintext_seed=*/7);
    cfg.cycleSkipping = true;
    const auto skipped = attack::EncryptionService::collectSamplesParallel(
        cfg, kKey, /*samples=*/4, /*lines=*/16, /*plaintext_seed=*/7);

    ASSERT_EQ(stepped.size(), skipped.size());
    for (std::size_t i = 0; i < stepped.size(); ++i) {
        EXPECT_EQ(stepped[i].ciphertext, skipped[i].ciphertext) << i;
        EXPECT_EQ(stepped[i].totalTime, skipped[i].totalTime) << i;
        EXPECT_EQ(stepped[i].lastRoundTime, skipped[i].lastRoundTime) << i;
        EXPECT_EQ(stepped[i].totalAccesses, skipped[i].totalAccesses) << i;
    }
}

} // namespace
} // namespace rcoal::mem
