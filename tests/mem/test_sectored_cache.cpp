/**
 * @file
 * Unit tests for the sectored set-associative cache: per-sector
 * validity, allocate-on-fill, inline age-counter LRU replacement, and
 * the streaming-reservation bound.
 */

#include <gtest/gtest.h>

#include "rcoal/mem/sectored_cache.hpp"

namespace rcoal::mem {
namespace {

/** 2 sets x 2 ways of 128 B lines (4 x 32 B sectors), 4 reservations. */
sim::CacheGeometry
tinyGeometry()
{
    sim::CacheGeometry g;
    g.sizeBytes = 512;
    g.lineBytes = 128;
    g.ways = 2;
    g.hitLatency = 4;
    g.sectorBytes = 32;
    g.streamingReservations = 4;
    return g;
}

TEST(SectoredCache, GeometryDerivesSetsAndWays)
{
    SectoredCache cache(tinyGeometry());
    EXPECT_EQ(cache.sets(), 2u);
    EXPECT_EQ(cache.ways(), 2u);
    EXPECT_EQ(cache.hitLatency(), 4u);
}

TEST(SectoredCache, LineMissThenFillHits)
{
    SectoredCache cache(tinyGeometry());
    EXPECT_EQ(cache.access(0x1000, 32), AccessOutcome::LineMiss);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.sectorMisses(), 0u);
    EXPECT_FALSE(cache.contains(0x1000, 32));

    cache.fill(0x1000, 32);
    EXPECT_EQ(cache.fills(), 1u);
    EXPECT_TRUE(cache.contains(0x1000, 32));
    EXPECT_EQ(cache.access(0x1000, 32), AccessOutcome::Hit);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(SectoredCache, ValidityIsSectorGranular)
{
    SectoredCache cache(tinyGeometry());
    cache.fill(0x1000, 32); // Sector 0 of line 0x1000.

    // Same line, different sector: resident tag but invalid sector.
    EXPECT_EQ(cache.access(0x1020, 32), AccessOutcome::SectorMiss);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.sectorMisses(), 1u);

    // A span is a hit only when EVERY touched sector is valid.
    EXPECT_EQ(cache.access(0x1000, 64), AccessOutcome::SectorMiss);
    cache.fill(0x1020, 32);
    EXPECT_EQ(cache.access(0x1000, 64), AccessOutcome::Hit);
    EXPECT_TRUE(cache.contains(0x1000, 64));
    EXPECT_FALSE(cache.contains(0x1000, 128)); // Sectors 2/3 invalid.
}

TEST(SectoredCache, FillMergesSectorsIntoExistingLine)
{
    SectoredCache cache(tinyGeometry());
    cache.fill(0x1000, 32);
    cache.fill(0x1040, 32); // Same line: must not allocate a new way.
    EXPECT_EQ(cache.fills(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_TRUE(cache.contains(0x1000, 32));
    EXPECT_TRUE(cache.contains(0x1040, 32));

    // The second way of the set is still free.
    cache.fill(0x1100, 32); // Line tag 0x22 -> same set as 0x20.
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(SectoredCache, EvictsLeastRecentlyTouchedWay)
{
    SectoredCache cache(tinyGeometry());
    // Lines with even tags land in set 0 (tag % 2): addrs 0, 256, 512.
    const Addr a = 0x000, b = 0x100, c = 0x200;
    cache.fill(a, 32);
    cache.fill(b, 32);

    // Touch a so b becomes LRU, then overflow the set.
    EXPECT_EQ(cache.access(a, 32), AccessOutcome::Hit);
    cache.fill(c, 32);

    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.contains(a, 32));
    EXPECT_FALSE(cache.contains(b, 32));
    EXPECT_TRUE(cache.contains(c, 32));
}

TEST(SectoredCache, FillRefreshesAgeLikeATouch)
{
    SectoredCache cache(tinyGeometry());
    const Addr a = 0x000, b = 0x100, c = 0x200;
    cache.fill(a, 32);
    cache.fill(b, 32);
    cache.fill(a, 64); // Re-fill a: now b is LRU.
    cache.fill(c, 32);
    EXPECT_TRUE(cache.contains(a, 32));
    EXPECT_FALSE(cache.contains(b, 32));
}

TEST(SectoredCache, MissesDoNotRefreshAge)
{
    SectoredCache cache(tinyGeometry());
    const Addr a = 0x000, b = 0x100, c = 0x200;
    cache.fill(a, 32);
    cache.fill(b, 32);
    // A sector miss on a must NOT promote it: a stays LRU.
    EXPECT_EQ(cache.access(a, 128), AccessOutcome::SectorMiss);
    cache.fill(c, 32);
    EXPECT_FALSE(cache.contains(a, 32));
    EXPECT_TRUE(cache.contains(b, 32));
}

TEST(SectoredCache, StreamingReservationsAreBounded)
{
    SectoredCache cache(tinyGeometry());
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(cache.canReserve()) << "reservation " << i;
        cache.reserve();
    }
    EXPECT_FALSE(cache.canReserve());
    EXPECT_EQ(cache.reservedFills(), 4u);

    cache.release();
    EXPECT_TRUE(cache.canReserve());
    EXPECT_EQ(cache.reservedFills(), 3u);
}

TEST(SectoredCache, ClearInvalidatesLinesButKeepsBookkeeping)
{
    SectoredCache cache(tinyGeometry());
    cache.fill(0x1000, 32);
    cache.reserve();
    const std::uint64_t fills_before = cache.fills();

    cache.clear();
    EXPECT_FALSE(cache.contains(0x1000, 32));
    EXPECT_EQ(cache.fills(), fills_before); // Counters survive clear().
    EXPECT_EQ(cache.reservedFills(), 1u);   // Reservations too.

    // The cache is fully usable again after a clear.
    cache.fill(0x1000, 32);
    EXPECT_EQ(cache.access(0x1000, 32), AccessOutcome::Hit);
    cache.release();
}

TEST(SectoredCache, PaperL2GeometryCounts)
{
    // The default L2: 128 KiB, 8-way, 128 B lines -> 128 sets.
    sim::CacheGeometry g;
    g.sizeBytes = 128 * 1024;
    g.lineBytes = 128;
    g.ways = 8;
    g.hitLatency = 8;
    SectoredCache cache(g);
    EXPECT_EQ(cache.sets(), 128u);
    EXPECT_EQ(cache.ways(), 8u);
}

} // namespace
} // namespace rcoal::mem
