/**
 * @file
 * Unit tests for the pluggable DRAM backends: factory/name/parse
 * round-trips, the per-backend timing facts the partitions schedule
 * against, and the protocol-checker parameterization.
 */

#include <gtest/gtest.h>

#include "rcoal/mem/dram_backend.hpp"

namespace rcoal::mem {
namespace {

const sim::DramBackendKind kAllKinds[] = {
    sim::DramBackendKind::Gddr5,
    sim::DramBackendKind::Gddr6,
    sim::DramBackendKind::Hbm2,
};

TEST(DramBackend, FactoryNameParseRoundTrip)
{
    for (const auto kind : kAllKinds) {
        const auto backend = makeDramBackend(kind);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->kind(), kind);
        EXPECT_STREQ(backend->name(), dramBackendKindName(kind));

        sim::DramBackendKind parsed;
        ASSERT_TRUE(parseDramBackendKind(backend->name(), parsed));
        EXPECT_EQ(parsed, kind);
    }

    sim::DramBackendKind parsed;
    EXPECT_FALSE(parseDramBackendKind("ddr4", parsed));
    EXPECT_FALSE(parseDramBackendKind("GDDR5", parsed)); // Case matters.
    EXPECT_FALSE(parseDramBackendKind(nullptr, parsed));
}

TEST(DramBackend, Gddr5PassesConfigTimingVerbatim)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.timing.tCL = 99; // Any edit must flow through untouched.
    cfg.burstCycles = 3;

    const BackendTiming t = Gddr5Backend().timing(cfg);
    EXPECT_EQ(t.base.tCL, 99u);
    EXPECT_EQ(t.base.tRP, cfg.timing.tRP);
    EXPECT_EQ(t.base.tRC, cfg.timing.tRC);
    EXPECT_EQ(t.base.tRAS, cfg.timing.tRAS);
    EXPECT_EQ(t.base.tCCD, cfg.timing.tCCD);
    EXPECT_EQ(t.base.tRCD, cfg.timing.tRCD);
    EXPECT_EQ(t.base.tRRD, cfg.timing.tRRD);
    EXPECT_EQ(t.base.tREFI, cfg.timing.tREFI);
    EXPECT_EQ(t.base.tRFC, cfg.timing.tRFC);
    EXPECT_EQ(t.burstCycles, 3u);
    // Flat channel: no bank-group windows, one data bus.
    EXPECT_FALSE(t.bankGroupAware);
    EXPECT_EQ(t.pseudoChannels, 1u);
    EXPECT_EQ(t.tCCDLong, cfg.timing.tCCD);
    EXPECT_EQ(t.tRRDLong, cfg.timing.tRRD);
}

TEST(DramBackend, Gddr6IgnoresConfigTimingAndIsGroupAware)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.timing.tCL = 99; // Must NOT leak into a self-timed backend.

    const BackendTiming t = Gddr6Backend().timing(cfg);
    EXPECT_EQ(t.base.tCL, 16u);
    EXPECT_TRUE(t.bankGroupAware);
    EXPECT_EQ(t.pseudoChannels, 1u);
    EXPECT_EQ(t.bankGroups, cfg.bankGroups);
    // The same-group windows must be at least the different-group ones.
    EXPECT_GT(t.tCCDLong, t.base.tCCD);
    EXPECT_GE(t.tRRDLong, t.base.tRRD);
}

TEST(DramBackend, Hbm2SplitsIntoPseudoChannels)
{
    const sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    const BackendTiming t = Hbm2Backend().timing(cfg);
    EXPECT_TRUE(t.bankGroupAware);
    EXPECT_EQ(t.pseudoChannels, 2u);
    EXPECT_GT(t.tCCDLong, t.base.tCCD);
    // Bigger banks refresh longer than the GDDR5 part.
    EXPECT_GT(t.base.tRFC, cfg.timing.tRFC);
}

TEST(DramBackend, CheckerParamsMatchBackendTiming)
{
    for (const auto kind : kAllKinds) {
        sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
        cfg.dramBackend = kind;
        const BackendTiming t = makeDramBackend(kind)->timing(cfg);
        const auto params = checkerParamsFor(cfg);

        EXPECT_EQ(params.banks, cfg.banksPerPartition);
        EXPECT_EQ(params.tCL, t.base.tCL);
        EXPECT_EQ(params.tRP, t.base.tRP);
        EXPECT_EQ(params.tRC, t.base.tRC);
        EXPECT_EQ(params.tRAS, t.base.tRAS);
        EXPECT_EQ(params.tCCD, t.base.tCCD);
        EXPECT_EQ(params.tRCD, t.base.tRCD);
        EXPECT_EQ(params.tRRD, t.base.tRRD);
        EXPECT_EQ(params.tRFC, t.base.tRFC);
        EXPECT_EQ(params.burstCycles, t.burstCycles);
        EXPECT_EQ(params.tCCDLong, t.tCCDLong);
        EXPECT_EQ(params.tRRDLong, t.tRRDLong);
        EXPECT_EQ(params.bankGroups, t.bankGroups);
        EXPECT_EQ(params.pseudoChannels, t.pseudoChannels);
        EXPECT_EQ(params.bankGroupAware, t.bankGroupAware);
    }
}

} // namespace
} // namespace rcoal::mem
