/**
 * @file
 * Serial vs. parallel determinism cross-checks for the experiment
 * engine: the same root seeds must produce byte-identical
 * observations, correlation tables and recovered keys for any worker
 * count. This is the contract that makes RCOAL_THREADS a pure
 * performance knob.
 */

#include <gtest/gtest.h>

#include "rcoal/attack/correlation_attack.hpp"

namespace rcoal::attack {
namespace {

sim::GpuConfig
testConfig(const core::CoalescingPolicy &policy)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.policy = policy;
    return cfg;
}

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

void
expectIdentical(const std::vector<EncryptionObservation> &a,
                const std::vector<EncryptionObservation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ciphertext.size(), b[i].ciphertext.size());
        for (std::size_t line = 0; line < a[i].ciphertext.size(); ++line)
            EXPECT_EQ(a[i].ciphertext[line], b[i].ciphertext[line])
                << "sample " << i << " line " << line;
        EXPECT_EQ(a[i].totalTime, b[i].totalTime) << "sample " << i;
        EXPECT_EQ(a[i].lastRoundTime, b[i].lastRoundTime)
            << "sample " << i;
        EXPECT_EQ(a[i].lastRoundAccesses, b[i].lastRoundAccesses)
            << "sample " << i;
        EXPECT_EQ(a[i].totalAccesses, b[i].totalAccesses)
            << "sample " << i;
    }
}

TEST(ParallelDeterminism, CollectSamplesMatchesSerialForRandomizedPolicy)
{
    // RSS+RTS exercises every random draw in the pipeline.
    const auto cfg = testConfig(core::CoalescingPolicy::rss(4, true));
    const auto serial = EncryptionService::collectSamplesParallel(
        cfg, kKey, 12, 32, 7, nullptr);
    ThreadPool pool(4);
    const auto parallel = EncryptionService::collectSamplesParallel(
        cfg, kKey, 12, 32, 7, &pool);
    expectIdentical(serial, parallel);
}

TEST(ParallelDeterminism, CollectSamplesIndependentOfWorkerCount)
{
    const auto cfg = testConfig(core::CoalescingPolicy::fss(8, true));
    ThreadPool one(1);
    ThreadPool three(3);
    const auto a = EncryptionService::collectSamplesParallel(
        cfg, kKey, 9, 32, 123, &one);
    const auto b = EncryptionService::collectSamplesParallel(
        cfg, kKey, 9, 32, 123, &three);
    expectIdentical(a, b);
}

TEST(ParallelDeterminism, DifferentSeedsDiffer)
{
    const auto cfg = testConfig(core::CoalescingPolicy::baseline());
    const auto a = EncryptionService::collectSamplesParallel(
        cfg, kKey, 2, 32, 7, nullptr);
    const auto b = EncryptionService::collectSamplesParallel(
        cfg, kKey, 2, 32, 8, nullptr);
    EXPECT_NE(a[0].ciphertext, b[0].ciphertext);
}

TEST(ParallelDeterminism, AttackKeyMatchesSerialBitForBit)
{
    const auto cfg = testConfig(core::CoalescingPolicy::rss(4, true));
    const auto observations = EncryptionService::collectSamplesParallel(
        cfg, kKey, 16, 32, 7, nullptr);

    AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = cfg.policy;
    CorrelationAttack attacker(attack_cfg);
    EncryptionService reference(cfg, kKey);
    const aes::Block truth = reference.lastRoundKey();

    const auto serial = attacker.attackKey(observations, truth, nullptr);
    ThreadPool pool(4);
    const auto parallel = attacker.attackKey(observations, truth, &pool);

    EXPECT_EQ(serial.recoveredLastRoundKey,
              parallel.recoveredLastRoundKey);
    EXPECT_EQ(serial.bytesRecovered, parallel.bytesRecovered);
    EXPECT_EQ(serial.avgCorrectCorrelation,
              parallel.avgCorrectCorrelation);
    for (unsigned j = 0; j < 16; ++j) {
        for (unsigned m = 0; m < 256; ++m) {
            // Bit-identical, not just close: the parallel engine must
            // not reorder any floating-point reduction.
            EXPECT_EQ(serial.bytes[j].correlation[m],
                      parallel.bytes[j].correlation[m])
                << "byte " << j << " guess " << m;
        }
        EXPECT_EQ(serial.bytes[j].bestGuess, parallel.bytes[j].bestGuess);
        EXPECT_EQ(serial.bytes[j].rankOfCorrect,
                  parallel.bytes[j].rankOfCorrect);
    }
}

TEST(ParallelDeterminism, AttackByteMatchesAttackKeyColumn)
{
    // attackByte and attackKey share per-(byte, guess) RNG streams, so
    // the standalone byte attack must reproduce the key attack's
    // column exactly.
    const auto cfg = testConfig(core::CoalescingPolicy::fss(4, true));
    const auto observations = EncryptionService::collectSamplesParallel(
        cfg, kKey, 10, 32, 7, nullptr);

    AttackConfig attack_cfg;
    attack_cfg.assumedPolicy = cfg.policy;
    CorrelationAttack attacker(attack_cfg);
    EncryptionService reference(cfg, kKey);

    const auto key_result = attacker.attackKey(
        observations, reference.lastRoundKey(), nullptr);
    ThreadPool pool(2);
    const auto byte_result = attacker.attackByte(observations, 5, &pool);
    for (unsigned m = 0; m < 256; ++m) {
        EXPECT_EQ(byte_result.correlation[m],
                  key_result.bytes[5].correlation[m]);
    }
}

} // namespace
} // namespace rcoal::attack
