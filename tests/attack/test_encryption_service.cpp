/**
 * @file
 * Unit tests for the encryption-service harness.
 */

#include <gtest/gtest.h>

#include "rcoal/aes/aes.hpp"
#include "rcoal/attack/encryption_service.hpp"
#include "rcoal/common/stats.hpp"

namespace rcoal::attack {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
baseConfig()
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.seed = 11;
    return cfg;
}

TEST(EncryptionService, CiphertextIsCorrectAes)
{
    EncryptionService service(baseConfig(), kKey);
    Rng rng(1);
    const auto pts = workloads::randomPlaintext(32, rng);
    const auto obs = service.encrypt(pts);
    const aes::Aes reference(kKey);
    ASSERT_EQ(obs.ciphertext.size(), 32u);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(obs.ciphertext[i], reference.encryptBlock(pts[i]));
}

TEST(EncryptionService, TimingFieldsArePopulated)
{
    EncryptionService service(baseConfig(), kKey);
    Rng rng(2);
    const auto obs =
        service.encrypt(workloads::randomPlaintext(32, rng));
    EXPECT_GT(obs.totalTime, 0.0);
    EXPECT_GT(obs.lastRoundTime, 0.0);
    EXPECT_LT(obs.lastRoundTime, obs.totalTime);
    EXPECT_GT(obs.lastRoundAccesses, 0u);
    EXPECT_GT(obs.totalAccesses, obs.lastRoundAccesses);
}

TEST(EncryptionService, LastRoundAccessesWithinTheoreticalBounds)
{
    EncryptionService service(baseConfig(), kKey);
    Rng rng(3);
    for (int i = 0; i < 5; ++i) {
        const auto obs =
            service.encrypt(workloads::randomPlaintext(32, rng));
        // 16 lookup instructions, each producing 1..16 accesses under
        // the baseline single-subwarp policy.
        EXPECT_GE(obs.lastRoundAccesses, 16u);
        EXPECT_LE(obs.lastRoundAccesses, 16u * 16u);
    }
}

TEST(EncryptionService, DisabledCoalescingYields512LastRoundAccesses)
{
    sim::GpuConfig cfg = baseConfig();
    cfg.policy = core::CoalescingPolicy::disabled();
    EncryptionService service(cfg, kKey);
    Rng rng(4);
    const auto obs =
        service.encrypt(workloads::randomPlaintext(32, rng));
    // 16 T4 instructions x 32 lanes, no merging.
    EXPECT_EQ(obs.lastRoundAccesses, 512u);
}

TEST(EncryptionService, CollectSamplesGathersDistinctPlaintexts)
{
    EncryptionService service(baseConfig(), kKey);
    Rng rng(5);
    const auto obs = service.collectSamples(4, 32, rng);
    ASSERT_EQ(obs.size(), 4u);
    EXPECT_NE(obs[0].ciphertext, obs[1].ciphertext);
}

TEST(EncryptionService, LastRoundKeyMatchesSchedule)
{
    EncryptionService service(baseConfig(), kKey);
    const aes::KeySchedule ks(kKey, aes::KeySize::Aes128);
    EXPECT_EQ(service.lastRoundKey(), ks.roundKey(10));
}

TEST(EncryptionService, Figure5TimeTracksAccesses)
{
    // Fig. 5: last-round execution time is linear in last-round
    // coalesced accesses. Require a strong positive correlation.
    EncryptionService service(baseConfig(), kKey);
    Rng rng(6);
    const auto obs = service.collectSamples(30, 32, rng);
    std::vector<double> accesses;
    for (const auto &o : obs)
        accesses.push_back(static_cast<double>(o.lastRoundAccesses));
    const auto times =
        measurementSeries(obs, MeasurementVector::LastRoundTime);
    EXPECT_GT(pearsonCorrelation(accesses, times), 0.9);
}

TEST(EncryptionService, MeasurementSeriesSelectors)
{
    EncryptionService service(baseConfig(), kKey);
    Rng rng(7);
    const auto obs = service.collectSamples(3, 32, rng);
    const auto total =
        measurementSeries(obs, MeasurementVector::TotalTime);
    const auto last =
        measurementSeries(obs, MeasurementVector::LastRoundTime);
    const auto acc = measurementSeries(
        obs, MeasurementVector::ObservedLastRoundAccesses);
    ASSERT_EQ(total.size(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        EXPECT_EQ(total[i], obs[i].totalTime);
        EXPECT_EQ(last[i], obs[i].lastRoundTime);
        EXPECT_EQ(acc[i],
                  static_cast<double>(obs[i].lastRoundAccesses));
    }
}

TEST(EncryptionServiceDeathTest, RejectsInvalidKeyLengths)
{
    const std::array<std::uint8_t, 10> bad{};
    EXPECT_EXIT(EncryptionService(baseConfig(), bad),
                testing::ExitedWithCode(1), "16, 24 or 32");
}

TEST(EncryptionService, SupportsAes256)
{
    const std::array<std::uint8_t, 32> key256{9, 9, 9};
    EncryptionService service(baseConfig(), key256);
    Rng rng(8);
    const auto pts = workloads::randomPlaintext(32, rng);
    const auto obs = service.encrypt(pts);
    const aes::Aes reference(key256);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(obs.ciphertext[i], reference.encryptBlock(pts[i]));
    // 14 rounds: more round lookups than AES-128, same last round size.
    EXPECT_GT(obs.totalAccesses, obs.lastRoundAccesses * 10);
    // Eq. 3 holds for any key size: the last-round key byte relation is
    // checked end-to-end by the AES-256 attack test below.
    const aes::KeySchedule ks(key256, aes::KeySize::Aes256);
    EXPECT_EQ(service.lastRoundKey(), ks.roundKey(14));
}

} // namespace
} // namespace rcoal::attack
