/**
 * @file
 * Unit tests for the correlation-attack engine (estimation logic only;
 * full attack runs live in the integration suite).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rcoal/aes/sbox.hpp"
#include "rcoal/aes/ttable.hpp"
#include "rcoal/attack/correlation_attack.hpp"

namespace rcoal::attack {
namespace {

/** Build a ciphertext set whose byte-j T4 block indices are chosen. */
std::vector<aes::Block>
ciphertextWithBlocks(unsigned j, std::uint8_t guess,
                     const std::vector<unsigned> &blocks)
{
    std::vector<aes::Block> lines(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        // Choose t with t >> 4 == blocks[i]; invert Eq. 3:
        // c_j = Sbox[t] ^ guess.
        const std::uint8_t t =
            static_cast<std::uint8_t>(blocks[i] << 4);
        lines[i][j] = aes::subByte(t) ^ guess;
    }
    return lines;
}

TEST(CorrelationAttack, BaselineEstimateCountsDistinctBlocks)
{
    CorrelationAttack attack({});
    Rng rng(1);
    // 4 lines touching blocks {3, 3, 7, 9} -> 3 coalesced accesses.
    const auto lines = ciphertextWithBlocks(0, 0x42, {3, 3, 7, 9});
    EXPECT_DOUBLE_EQ(
        attack.estimateLastRoundAccesses(lines, 0, 0x42, rng), 3.0);
}

TEST(CorrelationAttack, EstimateIsOneWhenAllLinesShareABlock)
{
    CorrelationAttack attack({});
    Rng rng(2);
    const auto lines =
        ciphertextWithBlocks(5, 0x00, std::vector<unsigned>(32, 4));
    EXPECT_DOUBLE_EQ(
        attack.estimateLastRoundAccesses(lines, 5, 0x00, rng), 1.0);
}

TEST(CorrelationAttack, EstimateDependsOnGuess)
{
    CorrelationAttack attack({});
    Rng rng(3);
    const auto lines = ciphertextWithBlocks(0, 0x11, {1, 2, 3, 4});
    const double right =
        attack.estimateLastRoundAccesses(lines, 0, 0x11, rng);
    EXPECT_DOUBLE_EQ(right, 4.0);
    // A different guess sees a scrambled index set - usually not 4
    // distinct blocks chosen by us, but always within [1, 4].
    const double wrong =
        attack.estimateLastRoundAccesses(lines, 0, 0x12, rng);
    EXPECT_GE(wrong, 1.0);
    EXPECT_LE(wrong, 4.0);
}

TEST(CorrelationAttack, FssAttackSplitsLinesIntoGroups)
{
    // Algorithm 1 with num-subwarp = 2: the first half of the lines
    // forms subwarp 0 and the second half subwarp 1.
    AttackConfig cfg;
    cfg.assumedPolicy = core::CoalescingPolicy::fss(2);
    cfg.warpSize = 4;
    CorrelationAttack attack(cfg);
    Rng rng(4);
    // Blocks {5, 9 | 5, 9}: baseline would give 2; per-subwarp gives 4.
    const auto lines = ciphertextWithBlocks(0, 0x00, {5, 9, 5, 9});
    EXPECT_DOUBLE_EQ(
        attack.estimateLastRoundAccesses(lines, 0, 0x00, rng), 4.0);

    // Blocks {5, 5 | 9, 9}: per-subwarp dedup gives 2.
    const auto aligned = ciphertextWithBlocks(0, 0x00, {5, 5, 9, 9});
    EXPECT_DOUBLE_EQ(
        attack.estimateLastRoundAccesses(aligned, 0, 0x00, rng), 2.0);
}

TEST(CorrelationAttack, MultiWarpPlaintextSumsPerWarp)
{
    AttackConfig cfg;
    cfg.warpSize = 4;
    CorrelationAttack attack(cfg);
    Rng rng(5);
    // Two warps of 4 lines; each warp touches 2 distinct blocks.
    const auto lines =
        ciphertextWithBlocks(0, 0x00, {1, 1, 2, 2, 3, 3, 4, 4});
    EXPECT_DOUBLE_EQ(
        attack.estimateLastRoundAccesses(lines, 0, 0x00, rng), 4.0);
}

TEST(CorrelationAttack, RandomizedModelVariesAcrossDraws)
{
    AttackConfig cfg;
    cfg.assumedPolicy = core::CoalescingPolicy::rss(4, true);
    CorrelationAttack attack(cfg);
    Rng rng(6);
    std::vector<aes::Block> lines(32);
    Rng data_rng(7);
    for (auto &line : lines) {
        for (auto &b : line)
            b = static_cast<std::uint8_t>(data_rng.below(256));
    }
    std::set<double> estimates;
    for (int i = 0; i < 20; ++i) {
        estimates.insert(
            attack.estimateLastRoundAccesses(lines, 0, 0x00, rng));
    }
    EXPECT_GT(estimates.size(), 3u);
}

TEST(CorrelationAttack, AveragingDrawsReducesVariance)
{
    AttackConfig one_draw;
    one_draw.assumedPolicy = core::CoalescingPolicy::rss(4, true);
    one_draw.drawsPerEstimate = 1;
    AttackConfig many_draws = one_draw;
    many_draws.drawsPerEstimate = 32;

    CorrelationAttack a(one_draw);
    CorrelationAttack b(many_draws);
    std::vector<aes::Block> lines(32);
    Rng data_rng(8);
    for (auto &line : lines) {
        for (auto &byte : line)
            byte = static_cast<std::uint8_t>(data_rng.below(256));
    }
    const auto spread = [&](CorrelationAttack &attack) {
        Rng rng(9);
        double lo = 1e9;
        double hi = -1e9;
        for (int i = 0; i < 30; ++i) {
            const double e =
                attack.estimateLastRoundAccesses(lines, 0, 0, rng);
            lo = std::min(lo, e);
            hi = std::max(hi, e);
        }
        return hi - lo;
    };
    EXPECT_LT(spread(b), spread(a));
}

TEST(CorrelationAttack, AttackByteFindsPlantedCorrelation)
{
    // Synthetic observations: time equals the block count for guess
    // 0x5a exactly; the attack must pick that guess.
    CorrelationAttack attack({});
    Rng rng(10);
    std::vector<EncryptionObservation> obs;
    Rng data_rng(11);
    for (int s = 0; s < 60; ++s) {
        EncryptionObservation o;
        o.ciphertext.resize(32);
        for (auto &line : o.ciphertext) {
            for (auto &b : line)
                b = static_cast<std::uint8_t>(data_rng.below(256));
        }
        Rng tmp(0);
        o.lastRoundTime =
            attack.estimateLastRoundAccesses(o.ciphertext, 3, 0x5a, tmp);
        o.totalTime = o.lastRoundTime;
        obs.push_back(std::move(o));
    }
    const auto result = attack.attackByte(obs, 3);
    EXPECT_EQ(result.bestGuess, 0x5a);
    EXPECT_GT(result.bestCorrelation, 0.99);
}

TEST(CorrelationAttack, AttackKeyEvaluatesAgainstTruth)
{
    // With random times nothing should correlate; evaluation fields
    // must still be consistent.
    CorrelationAttack attack({});
    Rng data_rng(12);
    std::vector<EncryptionObservation> obs;
    for (int s = 0; s < 20; ++s) {
        EncryptionObservation o;
        o.ciphertext.resize(32);
        for (auto &line : o.ciphertext) {
            for (auto &b : line)
                b = static_cast<std::uint8_t>(data_rng.below(256));
        }
        o.lastRoundTime = static_cast<double>(data_rng.below(1000));
        obs.push_back(std::move(o));
    }
    aes::Block truth{};
    for (unsigned i = 0; i < 16; ++i)
        truth[i] = static_cast<std::uint8_t>(i * 13 + 1);
    const auto result = attack.attackKey(obs, truth);
    EXPECT_LE(result.bytesRecovered, 16u);
    for (unsigned j = 0; j < 16; ++j) {
        const auto &byte = result.bytes[j];
        EXPECT_EQ(byte.correctGuessCorrelation,
                  byte.correlation[truth[j]]);
        EXPECT_GE(byte.bestCorrelation,
                  byte.correctGuessCorrelation);
        EXPECT_EQ(result.recoveredLastRoundKey[j], byte.bestGuess);
    }
    EXPECT_DOUBLE_EQ(averageCorrectCorrelation(result),
                     result.avgCorrectCorrelation);
}

TEST(CorrelationAttack, SampleEstimateFollowsEqFour)
{
    KeyAttackResult strong;
    strong.avgCorrectCorrelation = 0.5;
    KeyAttackResult weak;
    weak.avgCorrectCorrelation = 0.05;
    KeyAttackResult none;
    none.avgCorrectCorrelation = 0.0;

    const double s_strong = estimatedSamplesToRecover(strong);
    const double s_weak = estimatedSamplesToRecover(weak);
    EXPECT_LT(s_strong, s_weak);
    // Eq. 4 approximate form: ~2 Z^2 / rho^2 ~= 11 / rho^2.
    EXPECT_NEAR(s_weak, 11.0 / (0.05 * 0.05), s_weak * 0.1);
    EXPECT_TRUE(std::isinf(estimatedSamplesToRecover(none)));
    // Lower required confidence -> fewer samples.
    EXPECT_LT(estimatedSamplesToRecover(weak, 0.9), s_weak);
}

TEST(CorrelationAttackDeathTest, RejectsBadElementsPerBlock)
{
    AttackConfig cfg;
    cfg.elementsPerBlock = 3;
    EXPECT_DEATH(CorrelationAttack{cfg}, "divide");
    AttackConfig tiny;
    tiny.elementsPerBlock = 2; // 128 blocks > 64-bit mask
    EXPECT_DEATH(CorrelationAttack{tiny}, "64");
}

} // namespace
} // namespace rcoal::attack
