/**
 * @file
 * Unit tests for TablePrinter.
 */

#include <gtest/gtest.h>

#include "rcoal/common/table_printer.hpp"

namespace rcoal {
namespace {

TEST(TablePrinter, RendersHeadersAndRows)
{
    TablePrinter table({"M", "rho"});
    table.addRow({"1", "1.00"});
    table.addRow({"16", "0.03"});
    const std::string out = table.render();
    EXPECT_NE(out.find("M"), std::string::npos);
    EXPECT_NE(out.find("rho"), std::string::npos);
    EXPECT_NE(out.find("1.00"), std::string::npos);
    EXPECT_NE(out.find("0.03"), std::string::npos);
}

TEST(TablePrinter, ColumnsAreAligned)
{
    TablePrinter table({"a", "b"});
    table.addRow({"x", "y"});
    table.addRow({"longer-cell", "z"});
    const std::string out = table.render();
    // Every rendered line has the same width.
    std::size_t expected = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t next = out.find('\n', pos);
        ASSERT_NE(next, std::string::npos);
        EXPECT_EQ(next - pos, expected);
        pos = next + 1;
    }
}

TEST(TablePrinter, SeparatorRendersAsRule)
{
    TablePrinter table({"a"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    const std::string out = table.render();
    // Header rule + bottom rule + middle separator + top = 4 '+--' rules.
    int rules = 0;
    std::size_t pos = 0;
    while ((pos = out.find("+-", pos)) != std::string::npos) {
        ++rules;
        pos = out.find('\n', pos);
    }
    EXPECT_EQ(rules, 4);
}

TEST(TablePrinter, NumberFormattingHelpers)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(3.14159, 4), "3.1416");
    EXPECT_EQ(TablePrinter::num(std::uint64_t{12345}), "12345");
    EXPECT_EQ(TablePrinter::num(std::int64_t{-42}), "-42");
    EXPECT_EQ(TablePrinter::num(7), "7");
}

TEST(TablePrinterDeathTest, RowCellCountMustMatch)
{
    TablePrinter table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

} // namespace
} // namespace rcoal
