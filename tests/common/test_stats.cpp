/**
 * @file
 * Unit tests for statistics primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "rcoal/common/rng.hpp"
#include "rcoal/common/stats.hpp"

namespace rcoal {
namespace {

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variancePopulation(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.push(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variancePopulation(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variancePopulation(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddevPopulation(), 2.0);
    EXPECT_NEAR(s.varianceSample(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    Rng rng(3);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.normal(3.0, 1.5);
        all.push(v);
        (i % 2 ? a : b).push(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variancePopulation(), all.variancePopulation(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.push(1.0);
    a.push(3.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.push(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Correlation, PerfectPositive)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(Correlation, InvariantToAffineTransform)
{
    Rng rng(5);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform01();
        x.push_back(v);
        y.push_back(v + 0.2 * rng.uniform01());
    }
    const double base = pearsonCorrelation(x, y);
    std::vector<double> y2;
    for (double v : y)
        y2.push_back(3.0 * v - 7.0);
    EXPECT_NEAR(pearsonCorrelation(x, y2), base, 1e-12);
}

TEST(Correlation, ZeroVarianceSeriesYieldsZero)
{
    const std::vector<double> x{1, 1, 1, 1};
    const std::vector<double> y{2, 5, 3, 8};
    EXPECT_EQ(pearsonCorrelation(x, y), 0.0);
    EXPECT_EQ(pearsonCorrelation(y, x), 0.0);
}

TEST(Correlation, KnownValue)
{
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{1, 3, 2, 4};
    // Pearson correlation of this series is 0.8.
    EXPECT_NEAR(pearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(Correlation, IndependentSeriesNearZero)
{
    Rng rng(7);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 20000; ++i) {
        x.push_back(rng.uniform01());
        y.push_back(rng.uniform01());
    }
    EXPECT_NEAR(pearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(Covariance, MatchesManualComputation)
{
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> y{4, 6, 11};
    // means: 2 and 7; cov = ((-1)(-3) + 0(-1) + (1)(4)) / 3 = 7/3.
    EXPECT_NEAR(covariancePopulation(x, y), 7.0 / 3.0, 1e-12);
}

TEST(MeanStddev, BasicSeries)
{
    const std::vector<double> x{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(meanOf(x), 5.0);
    EXPECT_DOUBLE_EQ(stddevOf(x), 2.0);
    EXPECT_EQ(meanOf({}), 0.0);
}

TEST(MeanStddev, DivisorConventionsAreExplicit)
{
    // Regression for the divisor bug: stddevOf guarded size() < 2 like
    // a sample statistic while dividing by n like a population one.
    // The conventions are now split and must match RunningStats.
    const std::vector<double> x{2, 4};
    EXPECT_DOUBLE_EQ(stddevPopulationOf(x), 1.0);          // /n
    EXPECT_DOUBLE_EQ(stddevSampleOf(x), std::sqrt(2.0));   // /(n-1)
    EXPECT_DOUBLE_EQ(stddevOf(x), stddevPopulationOf(x));  // alias

    RunningStats rs;
    rs.push(2);
    rs.push(4);
    EXPECT_DOUBLE_EQ(stddevPopulationOf(x), rs.stddevPopulation());
    EXPECT_DOUBLE_EQ(stddevSampleOf(x), rs.stddevSample());

    // Population stddev is defined (zero) for one observation; the
    // sample form needs two.
    const std::vector<double> one{5};
    EXPECT_DOUBLE_EQ(stddevPopulationOf(one), 0.0);
    EXPECT_DOUBLE_EQ(stddevSampleOf(one), 0.0);
    EXPECT_DOUBLE_EQ(stddevPopulationOf({}), 0.0);
}

TEST(Correlation, PopulationMomentsKeepPerfectCorrelationAtOne)
{
    // cov_n / (sigma_n sigma_n) must be exactly +-1 for linear series;
    // mixing divisor conventions would shrink it by (n-1)/n.
    const std::vector<double> x{1, 2};
    const std::vector<double> y{2, 4};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(x, y), 1.0);
    const std::vector<double> neg{-2, -4};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(x, neg), -1.0);
}

TEST(NormalQuantile, StandardValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-6);
    EXPECT_NEAR(normalQuantile(0.99), 2.326347874, 1e-6);
    EXPECT_NEAR(normalQuantile(0.01), -2.326347874, 1e-6);
    EXPECT_NEAR(normalQuantile(0.0001), -normalQuantile(0.9999), 1e-6);
}

TEST(SampleEstimate, ApproximationNearExactForSmallRho)
{
    // Eq. 4: for small rho the exact and approximate forms agree.
    for (double rho : {0.05, 0.1, 0.2}) {
        const double exact = samplesForSuccessfulAttack(rho);
        const double approx = samplesForSuccessfulAttackApprox(rho);
        EXPECT_NEAR(exact / approx, 1.0, 0.05)
            << "rho=" << rho;
    }
}

TEST(SampleEstimate, PaperConstant)
{
    // The paper notes 2 * Z_0.99^2 ~= 11.
    const double z = normalQuantile(0.99);
    EXPECT_NEAR(2.0 * z * z, 10.82, 0.05);
}

TEST(SampleEstimate, ZeroRhoNeedsInfiniteSamples)
{
    EXPECT_TRUE(std::isinf(samplesForSuccessfulAttack(0.0)));
    EXPECT_TRUE(std::isinf(samplesForSuccessfulAttackApprox(0.0)));
}

TEST(SampleEstimate, PerfectCorrelationNeedsMinimumSamples)
{
    EXPECT_DOUBLE_EQ(samplesForSuccessfulAttack(1.0), 3.0);
}

TEST(SampleEstimate, MonotonicInRho)
{
    double prev = std::numeric_limits<double>::infinity();
    for (double rho : {0.01, 0.05, 0.1, 0.3, 0.6, 0.9}) {
        const double s = samplesForSuccessfulAttack(rho);
        EXPECT_LT(s, prev);
        prev = s;
    }
}

TEST(SampleEstimate, SymmetricInSign)
{
    EXPECT_DOUBLE_EQ(samplesForSuccessfulAttack(0.3),
                     samplesForSuccessfulAttack(-0.3));
}

} // namespace
} // namespace rcoal
