/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <vector>

#include "rcoal/common/rng.hpp"

namespace rcoal {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed)
{
    // Reference values for SplitMix64 seeded with 0.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(sm.next(), 0x06c45d188009454full);
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next64() == b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng rng(77);
    const auto first = rng.next64();
    rng.next64();
    rng.reseed(77);
    EXPECT_EQ(rng.next64(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(9);
    constexpr int kBuckets = 8;
    constexpr int kDraws = 80000;
    std::array<int, kBuckets> counts{};
    for (int i = 0; i < kDraws; ++i)
        ++counts[rng.below(kBuckets)];
    const double expected = double(kDraws) / kBuckets;
    for (int c : counts)
        EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform01();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NormalMomentsApproximatelyCorrect)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
        const double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / kDraws;
    const double var = sq / kDraws - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(21);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleIsUniformOverPermutations)
{
    // All 6 permutations of 3 elements should appear ~equally often.
    Rng rng(23);
    std::map<std::vector<int>, int> counts;
    constexpr int kDraws = 60000;
    for (int i = 0; i < kDraws; ++i) {
        std::vector<int> v{0, 1, 2};
        rng.shuffle(v);
        ++counts[v];
    }
    EXPECT_EQ(counts.size(), 6u);
    for (const auto &[perm, count] : counts)
        EXPECT_NEAR(count, kDraws / 6.0, kDraws / 6.0 * 0.1);
}

TEST(Rng, SampleDistinctSortedProperties)
{
    Rng rng(29);
    for (int trial = 0; trial < 200; ++trial) {
        const auto sample = rng.sampleDistinctSorted(5, 20);
        ASSERT_EQ(sample.size(), 5u);
        const std::set<std::uint64_t> unique(sample.begin(), sample.end());
        EXPECT_EQ(unique.size(), 5u);
        EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
        for (auto v : sample)
            EXPECT_LT(v, 20u);
    }
}

TEST(Rng, SampleDistinctSortedFullRange)
{
    Rng rng(31);
    const auto sample = rng.sampleDistinctSorted(10, 10);
    ASSERT_EQ(sample.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleDistinctSortedEmpty)
{
    Rng rng(37);
    EXPECT_TRUE(rng.sampleDistinctSorted(0, 10).empty());
}

TEST(Rng, StreamsWithDistinctIndicesAreIndependent)
{
    Rng child_a = Rng::stream(41, 1);
    Rng child_b = Rng::stream(41, 2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (child_a.next64() == child_b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, StreamsWithDistinctRootsAreIndependent)
{
    Rng child_a = Rng::stream(43, 9);
    Rng child_b = Rng::stream(44, 9);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (child_a.next64() == child_b.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, StreamIgnoresUnrelatedDraws)
{
    // Unlike a parent-advancing fork, stream() is a pure function of
    // (root, index): draws from sibling streams — or from an Rng seeded
    // with the same root — cannot perturb a later derivation.
    Rng warmup = Rng::stream(47, 1);
    for (int i = 0; i < 16; ++i)
        (void)warmup.next64();
    Rng after_draws = Rng::stream(47, 2);
    Rng untouched = Rng::stream(47, 2);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(after_draws.next64(), untouched.next64());
}

TEST(Rng, StreamIsPureFunctionOfSeedAndIndex)
{
    // No shared parent: any derivation order gives the same streams.
    Rng forward_first = Rng::stream(99, 0);
    Rng backward_second = Rng::stream(99, 1);
    Rng backward_first = Rng::stream(99, 1);
    Rng forward_second = Rng::stream(99, 0);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(forward_first.next64(), forward_second.next64());
        EXPECT_EQ(backward_first.next64(), backward_second.next64());
    }
}

TEST(Rng, StreamMatchesDeriveSeed)
{
    Rng direct = Rng::stream(5, 17);
    Rng via_seed(Rng::deriveSeed(5, 17));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(direct.next64(), via_seed.next64());
}

TEST(Rng, StreamsAreMutuallyIndependent)
{
    // Distinct indices (and distinct roots at one index) should agree
    // on essentially no outputs.
    Rng a = Rng::stream(7, 1);
    Rng b = Rng::stream(7, 2);
    Rng c = Rng::stream(8, 1);
    int same_ab = 0;
    int same_ac = 0;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t va = a.next64();
        if (va == b.next64())
            ++same_ab;
        if (va == c.next64())
            ++same_ac;
    }
    EXPECT_LT(same_ab, 2);
    EXPECT_LT(same_ac, 2);
}

TEST(Rng, StreamDiffersFromRootExpansion)
{
    // stream(root, i) must not collide with Rng(root) itself.
    Rng root(123);
    Rng derived = Rng::stream(123, 0);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (root.next64() == derived.next64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace rcoal
