/**
 * @file
 * Unit tests for the parallel experiment engine's thread pool:
 * coverage, ordering guarantees, worker-count edge cases, exception
 * propagation, nested calls, and the RCOAL_THREADS sizing override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "rcoal/common/thread_pool.hpp"

namespace rcoal {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleIterationRunsInlineOnCaller)
{
    ThreadPool pool(4);
    const auto caller = std::this_thread::get_id();
    std::thread::id executed;
    pool.parallelFor(1, [&](std::size_t) {
        executed = std::this_thread::get_id();
    });
    EXPECT_EQ(executed, caller);
}

TEST(ThreadPool, SingleWorkerPoolRunsInIndexOrder)
{
    ThreadPool pool(1);
    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ZeroRequestsDefaultSizing)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), defaultThreadCount());
}

TEST(ThreadPool, ManyMoreWorkersThanItemsStillCompletes)
{
    ThreadPool pool(8);
    std::atomic<int> sum{0};
    pool.parallelFor(3, [&](std::size_t i) {
        sum += static_cast<int>(i) + 1;
    });
    EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("trial failed");
                         }),
        std::runtime_error);
    // The pool survives a failed batch and stays usable.
    std::atomic<int> count{0};
    pool.parallelFor(10, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ExceptionInSerialFallbackPropagates)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     4, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallelFor(4, [&](std::size_t) {
        EXPECT_TRUE(ThreadPool::insideWorker());
        // A nested call must not wait on the (busy) pool.
        pool.parallelFor(8, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, WorkerStatsAccountForAllIterations)
{
    ThreadPool pool(3);
    pool.parallelFor(50, [](std::size_t) {});
    std::uint64_t total = 0;
    for (const auto &w : pool.workerStats())
        total += w.tasks;
    EXPECT_EQ(total, 50u);
}

TEST(ThreadPool, InsideWorkerIsFalseOnCaller)
{
    EXPECT_FALSE(ThreadPool::insideWorker());
}

TEST(DefaultThreadCount, HonorsEnvOverride)
{
    ASSERT_EQ(setenv("RCOAL_THREADS", "3", 1), 0);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ASSERT_EQ(setenv("RCOAL_THREADS", "0", 1), 0);
    EXPECT_GE(defaultThreadCount(), 1u); // invalid -> fallback
    ASSERT_EQ(setenv("RCOAL_THREADS", "lots", 1), 0);
    EXPECT_GE(defaultThreadCount(), 1u);
    ASSERT_EQ(unsetenv("RCOAL_THREADS"), 0);
    EXPECT_GE(defaultThreadCount(), 1u);
}

} // namespace
} // namespace rcoal
