/**
 * @file
 * Unit tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rcoal/common/csv.hpp"

namespace rcoal {
namespace {

TEST(Csv, HeaderAndRows)
{
    CsvWriter csv({"m", "rho"});
    csv.addRow({"1", "1.0"});
    csv.addRow({"2", "0.41"});
    EXPECT_EQ(csv.render(), "m,rho\n1,1.0\n2,0.41\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(Csv, EscapingCommasQuotesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, EscapedCellsRoundTripInRender)
{
    CsvWriter csv({"name", "value"});
    csv.addRow({"with,comma", "1"});
    EXPECT_EQ(csv.render(), "name,value\n\"with,comma\",1\n");
}

TEST(Csv, NumberFormatting)
{
    EXPECT_EQ(CsvWriter::num(0.25, 2), "0.25");
    EXPECT_EQ(CsvWriter::num(std::uint64_t{42}), "42");
}

TEST(Csv, WriteFileRoundTrip)
{
    CsvWriter csv({"a"});
    csv.addRow({"1"});
    const std::string path = testing::TempDir() + "/rcoal_csv_test.csv";
    csv.writeFile(path);
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "a\n1\n");
    std::remove(path.c_str());
}

TEST(CsvDeathTest, MismatchedRowPanics)
{
    CsvWriter csv({"a", "b"});
    EXPECT_DEATH(csv.addRow({"only"}), "cells");
}

TEST(CsvDeathTest, UnwritablePathIsFatal)
{
    CsvWriter csv({"a"});
    EXPECT_EXIT(csv.writeFile("/nonexistent-dir/x.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace rcoal
