/**
 * @file
 * Unit tests for logging/formatting helpers.
 */

#include <gtest/gtest.h>

#include "rcoal/common/logging.hpp"

namespace rcoal {
namespace {

TEST(Strprintf, FormatsBasicTypes)
{
    EXPECT_EQ(strprintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strprintf("%s!", "hello"), "hello!");
}

TEST(Strprintf, EmptyAndLongStrings)
{
    EXPECT_EQ(strprintf("%s", ""), "");
    const std::string long_str(5000, 'x');
    EXPECT_EQ(strprintf("%s", long_str.c_str()), long_str);
}

TEST(Assert, PassingConditionDoesNotAbort)
{
    RCOAL_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(AssertDeathTest, FailingConditionPanics)
{
    EXPECT_DEATH(RCOAL_ASSERT(false, "value was %d", 42), "value was 42");
}

TEST(PanicDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %s", "now"), "boom now");
}

TEST(FatalDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

} // namespace
} // namespace rcoal
