/**
 * @file
 * Unit tests for the Histogram.
 */

#include <gtest/gtest.h>

#include "rcoal/common/histogram.hpp"

namespace rcoal {
namespace {

TEST(Histogram, EmptyState)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.countOf(3), 0u);
    EXPECT_EQ(h.fractionOf(3), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.stddev(), 0.0);
}

TEST(Histogram, CountsAndFractions)
{
    Histogram h;
    h.add(1);
    h.add(2, 3);
    h.add(1);
    EXPECT_EQ(h.totalCount(), 5u);
    EXPECT_EQ(h.countOf(1), 2u);
    EXPECT_EQ(h.countOf(2), 3u);
    EXPECT_DOUBLE_EQ(h.fractionOf(1), 0.4);
    EXPECT_DOUBLE_EQ(h.fractionOf(2), 0.6);
}

TEST(Histogram, MeanAndStddev)
{
    Histogram h;
    // Values 2,4,4,4,5,5,7,9: mean 5, population stddev 2.
    for (int v : {2, 4, 4, 4, 5, 5, 7, 9})
        h.add(v);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 2.0);
}

TEST(Histogram, MinMaxAndSorted)
{
    Histogram h;
    h.add(5);
    h.add(-2);
    h.add(9);
    EXPECT_EQ(h.minValue(), -2);
    EXPECT_EQ(h.maxValue(), 9);
    const auto sorted = h.sorted();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted.front().first, -2);
    EXPECT_EQ(sorted.back().first, 9);
}

TEST(Histogram, NegativeValues)
{
    Histogram h;
    h.add(-5, 2);
    h.add(5, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stddev(), 5.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.add(1, 10);
    h.reset();
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.countOf(1), 0u);
}

TEST(Histogram, AsciiRenderContainsValues)
{
    Histogram h;
    h.add(3, 4);
    h.add(7, 1);
    const std::string art = h.toAscii(10);
    EXPECT_NE(art.find("3"), std::string::npos);
    EXPECT_NE(art.find("7"), std::string::npos);
    EXPECT_NE(art.find("#"), std::string::npos);
}

TEST(Histogram, AsciiRenderEmpty)
{
    Histogram h;
    EXPECT_NE(h.toAscii().find("empty"), std::string::npos);
}

} // namespace
} // namespace rcoal
