/**
 * @file
 * Unit tests for serving metrics: nearest-rank percentile edge cases
 * (empty sample, p = 0 and p = 100), LatencySummary on degenerate
 * inputs, and the describe() rendering of empty series.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "rcoal/serve/metrics.hpp"

namespace rcoal::serve {
namespace {

TEST(Percentile, EmptySampleYieldsNan)
{
    const std::vector<double> empty;
    EXPECT_TRUE(std::isnan(percentile(empty, 0.0)));
    EXPECT_TRUE(std::isnan(percentile(empty, 50.0)));
    EXPECT_TRUE(std::isnan(percentile(empty, 100.0)));
}

TEST(Percentile, ZeroIsMinimumAndHundredIsMaximum)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_EQ(percentile(v, 0.0), 1.0);
    EXPECT_EQ(percentile(v, 100.0), 4.0);
}

TEST(Percentile, NearestRankOnSmallSamples)
{
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
    EXPECT_EQ(percentile(v, 25.0), 10.0); // ceil(1.0) = rank 1.
    EXPECT_EQ(percentile(v, 50.0), 20.0); // ceil(2.0) = rank 2.
    EXPECT_EQ(percentile(v, 75.0), 30.0);
    EXPECT_EQ(percentile(v, 99.0), 40.0); // ceil(3.96) = rank 4.

    const std::vector<double> one = {7.0};
    EXPECT_EQ(percentile(one, 0.0), 7.0);
    EXPECT_EQ(percentile(one, 50.0), 7.0);
    EXPECT_EQ(percentile(one, 100.0), 7.0);
}

TEST(PercentileDeathTest, OutOfRangePanics)
{
    const std::vector<double> v = {1.0};
    EXPECT_DEATH((void)percentile(v, -0.5), "out of range");
    EXPECT_DEATH((void)percentile(v, 100.5), "out of range");
}

TEST(LatencySummaryTest, EmptyInputIsAllZerosWithZeroCount)
{
    const LatencySummary summary = LatencySummary::of({});
    EXPECT_EQ(summary.count, 0u);
    EXPECT_EQ(summary.p50, 0.0);
    EXPECT_EQ(summary.p99, 0.0);
    EXPECT_EQ(summary.mean, 0.0);
    EXPECT_EQ(summary.max, 0.0);
}

TEST(LatencySummaryTest, SingleSampleIsItsOwnEveryPercentile)
{
    const LatencySummary summary = LatencySummary::of({42.0});
    EXPECT_EQ(summary.count, 1u);
    EXPECT_EQ(summary.p50, 42.0);
    EXPECT_EQ(summary.p95, 42.0);
    EXPECT_EQ(summary.p99, 42.0);
    EXPECT_EQ(summary.mean, 42.0);
    EXPECT_EQ(summary.max, 42.0);
}

TEST(LatencySummaryTest, UnsortedInputIsHandled)
{
    const LatencySummary summary =
        LatencySummary::of({30.0, 10.0, 20.0, 40.0});
    EXPECT_EQ(summary.p50, 20.0);
    EXPECT_EQ(summary.max, 40.0);
    EXPECT_EQ(summary.mean, 25.0);
}

TEST(ServeReportDescribe, EmptySeriesSaysNoSamplesInsteadOfZeros)
{
    const ServeReport report; // Nothing completed.
    const std::string text = report.describe();
    EXPECT_NE(text.find("no samples"), std::string::npos);
    EXPECT_EQ(text.find("p50 0"), std::string::npos);
}

TEST(ServeReportDescribe, PopulatedSeriesShowsPercentiles)
{
    ServeReport report;
    report.allLatency = LatencySummary::of({100.0, 200.0, 300.0});
    report.probeLatency = LatencySummary::of({150.0});
    const std::string text = report.describe();
    EXPECT_NE(text.find("p50"), std::string::npos);
    EXPECT_EQ(text.find("no samples"), std::string::npos);
}

} // namespace
} // namespace rcoal::serve
