/**
 * @file
 * Unit tests for ServeConfig validation.
 */

#include <gtest/gtest.h>

#include "rcoal/serve/config.hpp"

namespace rcoal::serve {
namespace {

TEST(ServeConfig, DefaultsValidateAgainstPaperBaseline)
{
    const sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    const ServeConfig cfg;
    cfg.validate(gpu);
    // 15 SMs at 5 SMs per kernel = 3 concurrent kernel gangs.
    EXPECT_EQ(cfg.numGangs(gpu), 3u);
}

TEST(ServeConfig, PolicyNames)
{
    EXPECT_STREQ(batchPolicyName(BatchPolicy::Fcfs), "FCFS");
    EXPECT_STREQ(batchPolicyName(BatchPolicy::BatchFill), "BatchFill");
    EXPECT_STREQ(batchPolicyName(BatchPolicy::Sjf), "SJF");
}

TEST(ServeConfig, DescribeMentionsKeyKnobs)
{
    const sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    ServeConfig cfg;
    cfg.batchPolicy = BatchPolicy::BatchFill;
    const std::string text = cfg.describe(gpu);
    for (const char *needle : {"queue 64", "BatchFill", "3 gangs"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing: " << needle;
    }
}

TEST(ServeConfigDeathTest, RejectsBadKnobsWithActionableMessages)
{
    const sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();

    ServeConfig cfg;
    cfg.queueCapacity = 0;
    EXPECT_EXIT(cfg.validate(gpu), testing::ExitedWithCode(1),
                "queueCapacity must be positive");

    cfg = ServeConfig{};
    cfg.maxBatchRequests = 0;
    EXPECT_EXIT(cfg.validate(gpu), testing::ExitedWithCode(1),
                "maxBatchRequests must be positive");

    cfg = ServeConfig{};
    cfg.smsPerKernel = 0;
    EXPECT_EXIT(cfg.validate(gpu), testing::ExitedWithCode(1),
                "smsPerKernel must be positive");

    cfg = ServeConfig{};
    cfg.smsPerKernel = gpu.numSms + 1;
    EXPECT_EXIT(cfg.validate(gpu), testing::ExitedWithCode(1),
                "exceeds the GPU's 15 SMs");

    cfg = ServeConfig{};
    cfg.batchPolicy = BatchPolicy::BatchFill;
    cfg.batchTimeoutCycles = 0;
    EXPECT_EXIT(cfg.validate(gpu), testing::ExitedWithCode(1),
                "batchTimeoutCycles must be positive");

    cfg = ServeConfig{};
    cfg.maxSimCycles = 0;
    EXPECT_EXIT(cfg.validate(gpu), testing::ExitedWithCode(1),
                "maxSimCycles must be positive");
}

TEST(ServeConfig, ZeroTimeoutLegalOutsideBatchFill)
{
    const sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    ServeConfig cfg;
    cfg.batchPolicy = BatchPolicy::Fcfs;
    cfg.batchTimeoutCycles = 0; // Unused by FCFS.
    cfg.validate(gpu);
}

} // namespace
} // namespace rcoal::serve
