/**
 * @file
 * Admission-overflow behaviour: rejected requests are counted in both
 * the serve report and the telemetry registry, a rejected closed-loop
 * client retries instead of waiting forever, and a workload that truly
 * cannot finish dies on the livelock backstop instead of spinning.
 */

#include <gtest/gtest.h>

#include "rcoal/serve/server.hpp"
#include "rcoal/telemetry/registry.hpp"
#include "rcoal/telemetry/sampler.hpp"

namespace rcoal::serve {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
smallGpu()
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.seed = 42;
    return cfg;
}

/** A one-slot queue in front of a single gang: overload on purpose. */
ServeConfig
tinyQueueServe()
{
    ServeConfig cfg;
    cfg.queueCapacity = 1;
    cfg.maxBatchRequests = 1;
    cfg.smsPerKernel = 4; // One gang: batches serialize.
    return cfg;
}

/** Probe client plus aggressive background traffic. */
WorkloadSpec
overloadSpec(unsigned samples)
{
    WorkloadSpec spec;
    spec.probeSamples = samples;
    spec.probeLines = 32;
    spec.probeSeed = 7;
    spec.probeThinkCycles = 50;
    spec.backgroundMeanGapCycles = 200.0;
    spec.backgroundLineChoices = {32};
    spec.backgroundSeed = 99;
    return spec;
}

TEST(QueueOverflow, RejectionsAreCountedAndClientsRecover)
{
    // With a one-slot queue and background arrivals faster than the
    // service rate, admission control must reject requests — including
    // the closed-loop probe's. The run still finishing every probe
    // sample is the recovery property: a rejected client is handed its
    // request back and retries after a think time instead of staying
    // `waiting` forever.
    const WorkloadSpec spec = overloadSpec(12);
    const EncryptionServer server(smallGpu(), tinyQueueServe(), kKey);
    const ServeReport report = server.run(spec);

    EXPECT_GT(report.rejected, 0u);
    EXPECT_GE(report.admitted, report.completed.size());
    unsigned probes = 0;
    for (const auto &done : report.completed)
        probes += done.isProbe ? 1 : 0;
    EXPECT_EQ(probes, spec.probeSamples);
}

TEST(QueueOverflow, RejectionsReachTheTelemetryRegistry)
{
    const WorkloadSpec spec = overloadSpec(8);
    const EncryptionServer server(smallGpu(), tinyQueueServe(), kKey);

    telemetry::MetricRegistry registry;
    telemetry::TelemetrySampler sampler(registry,
                                        /*interval_cycles=*/1000);
    ServeTelemetry telemetry;
    telemetry.sampler = &sampler;
    const ServeReport report =
        server.run(spec, /*tracer=*/nullptr, &telemetry);

    EXPECT_GT(report.rejected, 0u);
    EXPECT_EQ(registry.readValue("rcoal_serve_rejected_total"),
              static_cast<double>(report.rejected));
    EXPECT_EQ(registry.readValue("rcoal_serve_admitted_total"),
              static_cast<double>(report.admitted));
}

TEST(QueueOverflow, OverflowBehaviourIsCycleSkippingInvariant)
{
    // The retry path must not depend on how time advances: the same
    // overloaded scenario with skipping disabled produces the same
    // admission statistics and completion schedule.
    const WorkloadSpec spec = overloadSpec(8);
    const ServeConfig serve = tinyQueueServe();

    sim::GpuConfig skipping = smallGpu();
    sim::GpuConfig stepping = smallGpu();
    stepping.cycleSkipping = false;

    const ServeReport a =
        EncryptionServer(skipping, serve, kKey).run(spec);
    const ServeReport b =
        EncryptionServer(stepping, serve, kKey).run(spec);

    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (std::size_t i = 0; i < a.completed.size(); ++i) {
        EXPECT_EQ(a.completed[i].id, b.completed[i].id);
        EXPECT_EQ(a.completed[i].arrival, b.completed[i].arrival);
        EXPECT_EQ(a.completed[i].completed, b.completed[i].completed);
    }
}

TEST(QueueOverflowDeathTest, ImpossibleWorkloadDiesOnLivelockBackstop)
{
    // A workload that cannot finish before maxSimCycles must hit the
    // fatal backstop — never spin silently. This is the "death" half of
    // the death-or-recovery contract for queue-full serving.
    WorkloadSpec spec = overloadSpec(8);
    spec.probeThinkCycles = 100'000; // Far beyond the wall below.
    ServeConfig serve = tinyQueueServe();
    serve.maxSimCycles = 50'000;
    const EncryptionServer server(smallGpu(), serve, kKey);
    EXPECT_DEATH((void)server.run(spec), "livelocked");
}

} // namespace
} // namespace rcoal::serve
