/**
 * @file
 * StreamingLatency regression tests: the streaming accumulator must
 * reproduce the historical copy-and-sort LatencySummary exactly below
 * the retention cutoff, and bound the p50/p95/p99 error (while keeping
 * count/mean/max exact) once it switches to the histogram path.
 */

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/serve/metrics.hpp"

namespace rcoal::serve {
namespace {

/** The historical implementation, kept verbatim as the oracle. */
LatencySummary
sortedOracle(std::vector<double> values)
{
    LatencySummary out;
    out.count = values.size();
    if (values.empty())
        return out;
    std::sort(values.begin(), values.end());
    out.p50 = percentile(values, 50.0);
    out.p95 = percentile(values, 95.0);
    out.p99 = percentile(values, 99.0);
    out.mean = std::accumulate(values.begin(), values.end(), 0.0) /
               static_cast<double>(values.size());
    out.max = values.back();
    return out;
}

std::vector<double>
lcgLatencies(std::size_t n, std::uint64_t seed)
{
    std::vector<double> values;
    values.reserve(n);
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        values.push_back(
            static_cast<double>((x >> 33) % 2'000'000 + 50));
    }
    return values;
}

TEST(StreamingLatencyTest, SmallSamplesMatchTheSortOracleExactly)
{
    for (std::size_t n : {std::size_t{1}, std::size_t{2},
                          std::size_t{17}, std::size_t{1000}}) {
        const std::vector<double> values = lcgLatencies(n, 11 + n);
        const LatencySummary streamed = LatencySummary::of(values);
        const LatencySummary oracle = sortedOracle(values);
        ASSERT_EQ(streamed.count, oracle.count) << "n=" << n;
        EXPECT_EQ(streamed.p50, oracle.p50) << "n=" << n;
        EXPECT_EQ(streamed.p95, oracle.p95) << "n=" << n;
        EXPECT_EQ(streamed.p99, oracle.p99) << "n=" << n;
        EXPECT_EQ(streamed.mean, oracle.mean) << "n=" << n;
        EXPECT_EQ(streamed.max, oracle.max) << "n=" << n;
    }
}

TEST(StreamingLatencyTest, EmptySummaryIsAllZeros)
{
    StreamingLatency s;
    const LatencySummary summary = s.summary();
    EXPECT_EQ(summary.count, 0u);
    EXPECT_EQ(summary.p50, 0.0);
    EXPECT_EQ(summary.mean, 0.0);
    EXPECT_EQ(summary.max, 0.0);
    EXPECT_FALSE(s.streaming());
}

TEST(StreamingLatencyTest, CrossingTheCutoffReleasesExactValues)
{
    StreamingLatency s(/*exact_cutoff=*/8);
    for (int i = 0; i < 8; ++i)
        s.observe(100.0 + i);
    EXPECT_FALSE(s.streaming());
    s.observe(200.0);
    EXPECT_TRUE(s.streaming());
    EXPECT_EQ(s.count(), 9u);
}

TEST(StreamingLatencyTest, LargeSamplesBoundPercentileError)
{
    const std::vector<double> values =
        lcgLatencies(StreamingLatency::kExactCutoff * 4, 3);
    StreamingLatency s;
    for (double v : values)
        s.observe(v);
    EXPECT_TRUE(s.streaming());

    const LatencySummary streamed = s.summary();
    const LatencySummary oracle = sortedOracle(values);

    EXPECT_EQ(streamed.count, oracle.count);
    EXPECT_EQ(streamed.mean, oracle.mean); // Sum stays exact.
    EXPECT_EQ(streamed.max, oracle.max);   // Max stays exact.
    // HDR bucketing bounds relative quantile error at 1/16 = 6.25%;
    // allow 6.5% for the integer rounding of fractional inputs.
    EXPECT_NEAR(streamed.p50, oracle.p50, oracle.p50 * 0.065);
    EXPECT_NEAR(streamed.p95, oracle.p95, oracle.p95 * 0.065);
    EXPECT_NEAR(streamed.p99, oracle.p99, oracle.p99 * 0.065);
}

TEST(StreamingLatencyTest, OfMatchesIncrementalObservation)
{
    const std::vector<double> values = lcgLatencies(300, 5);
    StreamingLatency incremental;
    for (double v : values)
        incremental.observe(v);
    const LatencySummary a = incremental.summary();
    const LatencySummary b = LatencySummary::of(values);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p95, b.p95);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.max, b.max);
}

} // namespace
} // namespace rcoal::serve
