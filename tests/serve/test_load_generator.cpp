/**
 * @file
 * Unit tests for the deterministic load generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rcoal/common/rng.hpp"
#include "rcoal/serve/load_generator.hpp"
#include "rcoal/serve/metrics.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {
namespace {

/** Drain @p generator over @p cycles cycles, one poll per cycle. */
std::vector<Request>
drain(OpenLoopGenerator &generator, Cycle cycles)
{
    std::vector<Request> out;
    for (Cycle now = 0; now <= cycles; ++now)
        generator.poll(now, out);
    return out;
}

TEST(LoadGenerator, OpenLoopDisabledAtNonPositiveGap)
{
    OpenLoopGenerator generator(0.0, {}, 1, 0);
    const auto requests = drain(generator, 100'000);
    EXPECT_TRUE(requests.empty());
    EXPECT_EQ(generator.issued(), 0u);
}

TEST(LoadGenerator, OpenLoopIsDeterministicPerSeed)
{
    const std::vector<unsigned> sizes = {32, 64};
    OpenLoopGenerator a(500.0, sizes, 99, 1000);
    OpenLoopGenerator b(500.0, sizes, 99, 1000);
    const auto ra = drain(a, 20'000);
    const auto rb = drain(b, 20'000);

    ASSERT_FALSE(ra.empty());
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_EQ(ra[i].arrival, rb[i].arrival);
        EXPECT_EQ(ra[i].plaintext, rb[i].plaintext);
        EXPECT_FALSE(ra[i].isProbe);
        EXPECT_EQ(ra[i].clientId, -1);
    }
    // Ids are dense from first_id, arrivals non-decreasing, and sizes
    // come from the choice list.
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, 1000 + i);
        if (i > 0)
            EXPECT_GE(ra[i].arrival, ra[i - 1].arrival);
        EXPECT_TRUE(ra[i].lines() == 32 || ra[i].lines() == 64);
    }
    EXPECT_EQ(a.issued(), ra.size());

    // A different seed produces a different schedule.
    OpenLoopGenerator c(500.0, sizes, 100, 1000);
    const auto rc = drain(c, 20'000);
    ASSERT_FALSE(rc.empty());
    EXPECT_TRUE(rc.size() != ra.size() ||
                rc[0].arrival != ra[0].arrival ||
                rc[0].plaintext != ra[0].plaintext);
}

TEST(LoadGenerator, OpenLoopMeanGapRoughlyMatches)
{
    OpenLoopGenerator generator(200.0, {32}, 7, 0);
    const Cycle horizon = 200'000;
    const auto requests = drain(generator, horizon);
    ASSERT_GT(requests.size(), 100u);
    const double mean_gap =
        static_cast<double>(requests.back().arrival) /
        static_cast<double>(requests.size());
    EXPECT_GT(mean_gap, 140.0);
    EXPECT_LT(mean_gap, 280.0);
}

TEST(LoadGenerator, ClosedLoopKeepsOneRequestInFlightPerClient)
{
    ClosedLoopGenerator generator(2, 100, 32, 5, 0, true);
    std::vector<Request> out;
    generator.poll(0, out);
    ASSERT_EQ(out.size(), 2u); // Both clients submit at once.
    EXPECT_EQ(out[0].clientId, 0);
    EXPECT_EQ(out[1].clientId, 1);
    EXPECT_TRUE(out[0].isProbe);
    EXPECT_EQ(generator.issued(), 2u);

    // While in flight, nothing new is submitted.
    out.clear();
    for (Cycle now = 1; now < 500; ++now)
        generator.poll(now, out);
    EXPECT_TRUE(out.empty());

    // Completion at cycle 500 schedules the next submission at 600.
    generator.onCompletion(0, 500);
    for (Cycle now = 500; now < 600; ++now)
        generator.poll(now, out);
    EXPECT_TRUE(out.empty());
    generator.poll(600, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].clientId, 0);
    EXPECT_EQ(out[0].id, 2u); // Fresh id after the two initial ones.
    EXPECT_EQ(generator.issued(), 3u);
}

TEST(LoadGenerator, ClosedLoopRetryReusesIdAndPlaintext)
{
    ClosedLoopGenerator generator(1, 50, 32, 5, 0, true);
    std::vector<Request> out;
    generator.poll(0, out);
    ASSERT_EQ(out.size(), 1u);
    const auto original_id = out[0].id;
    const auto original_plaintext = out[0].plaintext;

    // Admission control bounced the request; the client retries it
    // verbatim after a think time, keeping observation order aligned
    // with the plaintext stream index.
    generator.onRejection(0, std::move(out[0]), 10);
    out.clear();
    generator.poll(60, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, original_id);
    EXPECT_EQ(out[0].plaintext, original_plaintext);
    EXPECT_EQ(generator.issued(), 1u); // Retries are not re-counted.
}

TEST(LoadGenerator, OpenLoopArrivalStampIsPollIntervalInvariant)
{
    // Regression: poll() used to stamp request.arrival with the *poll*
    // cycle, so every arrival falling between polls (or inside a
    // skipped window) inherited a later timestamp and queueing latency
    // was under-counted — the same poll-interval-dependence family as
    // the scheduler's collectCompleted completion-stamp fix.
    const std::vector<unsigned> sizes = {32, 64};
    // 64'000 is divisible by every poll interval below, so all runs
    // observe exactly the same arrival horizon.
    const Cycle horizon = 64'000;
    auto drain_with_poll = [&](Cycle interval) {
        OpenLoopGenerator generator(400.0, sizes, 11, 0);
        std::vector<Request> out;
        for (Cycle now = 0; now <= horizon; now += interval)
            generator.poll(now, out);
        return out;
    };

    const auto fine = drain_with_poll(1);
    ASSERT_GT(fine.size(), 50u);

    // Latency summaries against a fixed completion schedule (the
    // scheduler stamps true kernel-finish cycles, independent of
    // polling) must be identical no matter how coarsely arrivals were
    // polled: the arrival stamp is the only poll-sensitive input left.
    auto summarize = [&](const std::vector<Request> &requests) {
        std::vector<double> latencies;
        latencies.reserve(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const double completion =
                static_cast<double>(fine[i].arrival) + 700.0;
            latencies.push_back(
                completion - static_cast<double>(requests[i].arrival));
        }
        return LatencySummary::of(latencies);
    };
    const LatencySummary reference = summarize(fine);

    for (const Cycle interval : {Cycle{64}, Cycle{1000}}) {
        const auto coarse = drain_with_poll(interval);
        ASSERT_EQ(coarse.size(), fine.size()) << "interval " << interval;
        for (std::size_t i = 0; i < fine.size(); ++i) {
            EXPECT_EQ(coarse[i].id, fine[i].id);
            EXPECT_EQ(coarse[i].arrival, fine[i].arrival)
                << "request " << i << " at poll interval " << interval;
            EXPECT_EQ(coarse[i].plaintext, fine[i].plaintext);
        }
        const LatencySummary summary = summarize(coarse);
        EXPECT_EQ(summary.count, reference.count);
        EXPECT_EQ(summary.p50, reference.p50);
        EXPECT_EQ(summary.p95, reference.p95);
        EXPECT_EQ(summary.p99, reference.p99);
        EXPECT_EQ(summary.p999, reference.p999);
        EXPECT_EQ(summary.mean, reference.mean);
        EXPECT_EQ(summary.max, reference.max);
    }
}

TEST(LoadGenerator, ClosedLoopArrivalStampIsScheduledSubmitCycle)
{
    // The closed-loop twin of the open-loop stamp fix: a client's
    // request arrives at its scheduled submission cycle, not at
    // whatever later cycle the frontend happened to poll.
    ClosedLoopGenerator generator(1, 100, 32, 5, 0, true);
    std::vector<Request> out;

    // First submission scheduled at 0, first polled at 37.
    generator.poll(37, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].arrival, 0u);

    // Completion at 500 schedules the next submission at 600; the poll
    // lands late at 640 but the stamp must still read 600.
    generator.onCompletion(0, 500);
    out.clear();
    generator.poll(640, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].arrival, 600u);

    // Rejection at 700 schedules the retry at 800; polled at 1000.
    generator.onRejection(0, std::move(out[0]), 700);
    out.clear();
    generator.poll(1000, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].arrival, 800u);
}

TEST(LoadGenerator, ExponentialGapEdgeDrawsStayFinite)
{
    // u = 0 is the smallest draw: a zero gap rounds up to the 1-cycle
    // minimum.
    EXPECT_EQ(detail::exponentialGap(0.0, 1000.0), 1u);

    // The largest draw uniform01() can produce is exactly 1 - 2^-53;
    // the gap is the distribution's deep tail but finite:
    // -1000 * log(2^-53) = 1000 * 53 * ln 2 ~= 36'736 cycles.
    const double max_u = 1.0 - 0x1p-53;
    const Cycle tail = detail::exponentialGap(max_u, 1000.0);
    EXPECT_GT(tail, 36'000u);
    EXPECT_LT(tail, 38'000u);

    // Draws at (or beyond) 1 would drive log1p(-u) to -inf; they are
    // clamped to the largest representable draw instead of producing a
    // non-finite gap.
    EXPECT_EQ(detail::exponentialGap(1.0, 1000.0), tail);
    EXPECT_EQ(detail::exponentialGap(std::nextafter(1.0, 2.0), 1000.0),
              tail);

    // An absurd mean times the ~36.7x tail factor exceeds the Cycle
    // range; the result is capped so the double-to-integer conversion
    // is never undefined.
    EXPECT_EQ(detail::exponentialGap(max_u, 1e18),
              detail::kMaxGapCycles);

    // Tiny draws against a sub-cycle mean still advance time.
    EXPECT_GE(detail::exponentialGap(1e-12, 0.001), 1u);
}

TEST(LoadGenerator, ClosedLoopPlaintextMatchesStreamDerivation)
{
    // Request i draws its plaintext from Rng::stream(seed, i): the
    // contract that lets probe plaintexts match the one-shot harness.
    const std::uint64_t seed = 7;
    ClosedLoopGenerator generator(1, 10, 32, seed, 0, true);
    std::vector<Request> out;
    generator.poll(0, out);
    ASSERT_EQ(out.size(), 1u);
    Rng rng = Rng::stream(seed, 0);
    EXPECT_EQ(out[0].plaintext, workloads::randomPlaintext(32, rng));

    generator.onCompletion(0, 5);
    out.clear();
    generator.poll(15, out);
    ASSERT_EQ(out.size(), 1u);
    Rng rng1 = Rng::stream(seed, 1);
    EXPECT_EQ(out[0].plaintext, workloads::randomPlaintext(32, rng1));
}

} // namespace
} // namespace rcoal::serve
