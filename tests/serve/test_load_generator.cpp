/**
 * @file
 * Unit tests for the deterministic load generators.
 */

#include <gtest/gtest.h>

#include "rcoal/common/rng.hpp"
#include "rcoal/serve/load_generator.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {
namespace {

/** Drain @p generator over @p cycles cycles, one poll per cycle. */
std::vector<Request>
drain(OpenLoopGenerator &generator, Cycle cycles)
{
    std::vector<Request> out;
    for (Cycle now = 0; now <= cycles; ++now)
        generator.poll(now, out);
    return out;
}

TEST(LoadGenerator, OpenLoopDisabledAtNonPositiveGap)
{
    OpenLoopGenerator generator(0.0, {}, 1, 0);
    const auto requests = drain(generator, 100'000);
    EXPECT_TRUE(requests.empty());
    EXPECT_EQ(generator.issued(), 0u);
}

TEST(LoadGenerator, OpenLoopIsDeterministicPerSeed)
{
    const std::vector<unsigned> sizes = {32, 64};
    OpenLoopGenerator a(500.0, sizes, 99, 1000);
    OpenLoopGenerator b(500.0, sizes, 99, 1000);
    const auto ra = drain(a, 20'000);
    const auto rb = drain(b, 20'000);

    ASSERT_FALSE(ra.empty());
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_EQ(ra[i].arrival, rb[i].arrival);
        EXPECT_EQ(ra[i].plaintext, rb[i].plaintext);
        EXPECT_FALSE(ra[i].isProbe);
        EXPECT_EQ(ra[i].clientId, -1);
    }
    // Ids are dense from first_id, arrivals non-decreasing, and sizes
    // come from the choice list.
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].id, 1000 + i);
        if (i > 0)
            EXPECT_GE(ra[i].arrival, ra[i - 1].arrival);
        EXPECT_TRUE(ra[i].lines() == 32 || ra[i].lines() == 64);
    }
    EXPECT_EQ(a.issued(), ra.size());

    // A different seed produces a different schedule.
    OpenLoopGenerator c(500.0, sizes, 100, 1000);
    const auto rc = drain(c, 20'000);
    ASSERT_FALSE(rc.empty());
    EXPECT_TRUE(rc.size() != ra.size() ||
                rc[0].arrival != ra[0].arrival ||
                rc[0].plaintext != ra[0].plaintext);
}

TEST(LoadGenerator, OpenLoopMeanGapRoughlyMatches)
{
    OpenLoopGenerator generator(200.0, {32}, 7, 0);
    const Cycle horizon = 200'000;
    const auto requests = drain(generator, horizon);
    ASSERT_GT(requests.size(), 100u);
    const double mean_gap =
        static_cast<double>(requests.back().arrival) /
        static_cast<double>(requests.size());
    EXPECT_GT(mean_gap, 140.0);
    EXPECT_LT(mean_gap, 280.0);
}

TEST(LoadGenerator, ClosedLoopKeepsOneRequestInFlightPerClient)
{
    ClosedLoopGenerator generator(2, 100, 32, 5, 0, true);
    std::vector<Request> out;
    generator.poll(0, out);
    ASSERT_EQ(out.size(), 2u); // Both clients submit at once.
    EXPECT_EQ(out[0].clientId, 0);
    EXPECT_EQ(out[1].clientId, 1);
    EXPECT_TRUE(out[0].isProbe);
    EXPECT_EQ(generator.issued(), 2u);

    // While in flight, nothing new is submitted.
    out.clear();
    for (Cycle now = 1; now < 500; ++now)
        generator.poll(now, out);
    EXPECT_TRUE(out.empty());

    // Completion at cycle 500 schedules the next submission at 600.
    generator.onCompletion(0, 500);
    for (Cycle now = 500; now < 600; ++now)
        generator.poll(now, out);
    EXPECT_TRUE(out.empty());
    generator.poll(600, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].clientId, 0);
    EXPECT_EQ(out[0].id, 2u); // Fresh id after the two initial ones.
    EXPECT_EQ(generator.issued(), 3u);
}

TEST(LoadGenerator, ClosedLoopRetryReusesIdAndPlaintext)
{
    ClosedLoopGenerator generator(1, 50, 32, 5, 0, true);
    std::vector<Request> out;
    generator.poll(0, out);
    ASSERT_EQ(out.size(), 1u);
    const auto original_id = out[0].id;
    const auto original_plaintext = out[0].plaintext;

    // Admission control bounced the request; the client retries it
    // verbatim after a think time, keeping observation order aligned
    // with the plaintext stream index.
    generator.onRejection(0, std::move(out[0]), 10);
    out.clear();
    generator.poll(60, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, original_id);
    EXPECT_EQ(out[0].plaintext, original_plaintext);
    EXPECT_EQ(generator.issued(), 1u); // Retries are not re-counted.
}

TEST(LoadGenerator, ClosedLoopPlaintextMatchesStreamDerivation)
{
    // Request i draws its plaintext from Rng::stream(seed, i): the
    // contract that lets probe plaintexts match the one-shot harness.
    const std::uint64_t seed = 7;
    ClosedLoopGenerator generator(1, 10, 32, seed, 0, true);
    std::vector<Request> out;
    generator.poll(0, out);
    ASSERT_EQ(out.size(), 1u);
    Rng rng = Rng::stream(seed, 0);
    EXPECT_EQ(out[0].plaintext, workloads::randomPlaintext(32, rng));

    generator.onCompletion(0, 5);
    out.clear();
    generator.poll(15, out);
    ASSERT_EQ(out.size(), 1u);
    Rng rng1 = Rng::stream(seed, 1);
    EXPECT_EQ(out[0].plaintext, workloads::randomPlaintext(32, rng1));
}

} // namespace
} // namespace rcoal::serve
