/**
 * @file
 * Unit tests for the pluggable batching policies.
 */

#include <gtest/gtest.h>

#include "rcoal/serve/batcher.hpp"

namespace rcoal::serve {
namespace {

Request
makeRequest(std::uint64_t id, Cycle arrival, unsigned lines = 32)
{
    Request request;
    request.id = id;
    request.arrival = arrival;
    request.plaintext.resize(lines, aes::Block{});
    return request;
}

ServeConfig
configFor(BatchPolicy policy, unsigned max_batch = 4,
          Cycle timeout = 1000)
{
    ServeConfig cfg;
    cfg.batchPolicy = policy;
    cfg.maxBatchRequests = max_batch;
    cfg.batchTimeoutCycles = timeout;
    return cfg;
}

std::vector<std::uint64_t>
ids(const std::vector<Request> &batch)
{
    std::vector<std::uint64_t> out;
    for (const auto &request : batch)
        out.push_back(request.id);
    return out;
}

TEST(Batcher, EmptyQueueFormsNoBatch)
{
    for (auto policy :
         {BatchPolicy::Fcfs, BatchPolicy::BatchFill, BatchPolicy::Sjf}) {
        Batcher batcher(configFor(policy));
        RequestQueue queue(8);
        EXPECT_TRUE(batcher.formBatch(queue, 500).empty());
    }
}

TEST(Batcher, FcfsLaunchesImmediatelyOldestFirst)
{
    Batcher batcher(configFor(BatchPolicy::Fcfs, 4));
    RequestQueue queue(8);
    for (std::uint64_t i = 0; i < 6; ++i)
        queue.tryPush(makeRequest(i, 100 + i));

    // Even a single pending request launches; no waiting.
    EXPECT_EQ(ids(batcher.formBatch(queue, 106)),
              (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(ids(batcher.formBatch(queue, 106)),
              (std::vector<std::uint64_t>{4, 5}));
    EXPECT_TRUE(queue.empty());
}

TEST(Batcher, BatchFillWaitsUntilFullOrTimeout)
{
    Batcher batcher(configFor(BatchPolicy::BatchFill, 4, 1000));
    RequestQueue queue(8);
    queue.tryPush(makeRequest(1, 100));
    queue.tryPush(makeRequest(2, 150));

    // Two of four queued, oldest only 500 cycles old: hold.
    EXPECT_TRUE(batcher.formBatch(queue, 600).empty());
    EXPECT_EQ(queue.size(), 2u);

    // Oldest hits the deadline: launch the partial batch.
    EXPECT_EQ(ids(batcher.formBatch(queue, 1100)),
              (std::vector<std::uint64_t>{1, 2}));

    // A full batch launches without waiting for the deadline.
    for (std::uint64_t i = 10; i < 14; ++i)
        queue.tryPush(makeRequest(i, 2000));
    EXPECT_EQ(ids(batcher.formBatch(queue, 2000)),
              (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

TEST(Batcher, SjfPicksSmallestWithAgeTiebreak)
{
    Batcher batcher(configFor(BatchPolicy::Sjf, 2));
    RequestQueue queue(8);
    queue.tryPush(makeRequest(1, 10, 96));
    queue.tryPush(makeRequest(2, 20, 32));
    queue.tryPush(makeRequest(3, 30, 64));
    queue.tryPush(makeRequest(4, 40, 32));

    // Smallest first; the older of the two 32-line requests wins the tie.
    EXPECT_EQ(ids(batcher.formBatch(queue, 50)),
              (std::vector<std::uint64_t>{2, 4}));
    EXPECT_EQ(ids(batcher.formBatch(queue, 50)),
              (std::vector<std::uint64_t>{3, 1}));
    EXPECT_TRUE(queue.empty());
}

} // namespace
} // namespace rcoal::serve
