/**
 * @file
 * Unit tests for the bounded admission queue.
 */

#include <gtest/gtest.h>

#include "rcoal/serve/request_queue.hpp"

namespace rcoal::serve {
namespace {

Request
makeRequest(std::uint64_t id, Cycle arrival, unsigned lines = 32)
{
    Request request;
    request.id = id;
    request.arrival = arrival;
    request.plaintext.resize(lines, aes::Block{});
    return request;
}

TEST(RequestQueue, AdmitsUpToCapacityThenRejects)
{
    RequestQueue queue(2);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.capacity(), 2u);

    EXPECT_TRUE(queue.tryPush(makeRequest(1, 10)));
    EXPECT_TRUE(queue.tryPush(makeRequest(2, 11)));
    EXPECT_EQ(queue.size(), 2u);

    Request overflow = makeRequest(3, 12, 64);
    EXPECT_FALSE(queue.tryPush(std::move(overflow)));
    // Rejection must leave the request intact so the client can retry
    // the identical payload.
    EXPECT_EQ(overflow.id, 3u);
    EXPECT_EQ(overflow.lines(), 64u);

    EXPECT_EQ(queue.admitted(), 2u);
    EXPECT_EQ(queue.rejected(), 1u);
}

TEST(RequestQueue, PopFrontIsOldestFirst)
{
    RequestQueue queue(4);
    queue.tryPush(makeRequest(7, 100));
    queue.tryPush(makeRequest(8, 105));
    queue.tryPush(makeRequest(9, 110));

    EXPECT_EQ(queue.oldestArrival(), 100u);
    EXPECT_EQ(queue.popFront().id, 7u);
    EXPECT_EQ(queue.oldestArrival(), 105u);
    EXPECT_EQ(queue.popFront().id, 8u);
    EXPECT_EQ(queue.popFront().id, 9u);
    EXPECT_TRUE(queue.empty());
}

TEST(RequestQueue, PopAtRemovesByAgeIndex)
{
    RequestQueue queue(4);
    queue.tryPush(makeRequest(1, 10, 96));
    queue.tryPush(makeRequest(2, 20, 32));
    queue.tryPush(makeRequest(3, 30, 64));

    EXPECT_EQ(queue.peek(0).id, 1u);
    EXPECT_EQ(queue.peek(1).id, 2u);
    EXPECT_EQ(queue.popAt(1).id, 2u); // Middle removal.
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.peek(0).id, 1u);
    EXPECT_EQ(queue.peek(1).id, 3u);
    // Freed a slot: admission works again at the bound.
    queue.tryPush(makeRequest(4, 40));
    queue.tryPush(makeRequest(5, 50));
    EXPECT_EQ(queue.size(), 4u);
    EXPECT_EQ(queue.rejected(), 0u);
}

} // namespace
} // namespace rcoal::serve
