/**
 * @file
 * End-to-end tests of the encryption server: functional correctness
 * (served ciphertexts match library AES), serving invariants, and the
 * bit-reproducibility contract that lets scenarios spread over the
 * bench thread pool.
 */

#include <gtest/gtest.h>

#include "rcoal/aes/aes.hpp"
#include "rcoal/common/rng.hpp"
#include "rcoal/common/thread_pool.hpp"
#include "rcoal/serve/scheduler.hpp"
#include "rcoal/serve/server.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::serve {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
smallGpu(std::uint64_t seed = 42)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.seed = seed;
    return cfg;
}

ServeConfig
smallServe(BatchPolicy policy = BatchPolicy::Fcfs)
{
    ServeConfig cfg;
    cfg.batchPolicy = policy;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.batchTimeoutCycles = 2000;
    cfg.smsPerKernel = 2; // Two gangs on the 4-SM device.
    return cfg;
}

WorkloadSpec
probeOnlySpec(unsigned samples = 4)
{
    WorkloadSpec spec;
    spec.probeSamples = samples;
    spec.probeLines = 32;
    spec.probeSeed = 7;
    spec.probeThinkCycles = 100;
    spec.backgroundMeanGapCycles = 0.0; // No background tenants.
    return spec;
}

void
expectIdenticalReports(const ServeReport &a, const ServeReport &b)
{
    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (std::size_t i = 0; i < a.completed.size(); ++i) {
        const auto &ca = a.completed[i];
        const auto &cb = b.completed[i];
        EXPECT_EQ(ca.id, cb.id) << "completion " << i;
        EXPECT_EQ(ca.arrival, cb.arrival) << "completion " << i;
        EXPECT_EQ(ca.launched, cb.launched) << "completion " << i;
        EXPECT_EQ(ca.completed, cb.completed) << "completion " << i;
        EXPECT_EQ(ca.ciphertext, cb.ciphertext) << "completion " << i;
        EXPECT_EQ(ca.kernelTotalTime, cb.kernelTotalTime)
            << "completion " << i;
        EXPECT_EQ(ca.kernelLastRoundTime, cb.kernelLastRoundTime)
            << "completion " << i;
        EXPECT_EQ(ca.kernelLastRoundAccesses, cb.kernelLastRoundAccesses)
            << "completion " << i;
        EXPECT_EQ(ca.batchRequests, cb.batchRequests)
            << "completion " << i;
    }
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.kernelsLaunched, b.kernelsLaunched);
    EXPECT_EQ(a.probeLatency.p50, b.probeLatency.p50);
    EXPECT_EQ(a.probeLatency.p99, b.probeLatency.p99);
}

TEST(EncryptionServer, ServesCorrectCiphertexts)
{
    const WorkloadSpec spec = probeOnlySpec(4);
    const EncryptionServer server(smallGpu(), smallServe(), kKey);
    const ServeReport report = server.run(spec);

    // Every probe completed, and probe request i carries the ciphertext
    // of plaintext stream (probeSeed, i) — the ground truth the library
    // AES computes directly.
    const aes::Aes aes(kKey);
    unsigned probes = 0;
    for (const auto &done : report.completed) {
        if (!done.isProbe)
            continue;
        ++probes;
        ASSERT_LT(done.id, spec.probeSamples);
        Rng rng = Rng::stream(spec.probeSeed, done.id);
        const auto plaintext =
            workloads::randomPlaintext(spec.probeLines, rng);
        EXPECT_EQ(done.ciphertext, aes.encryptEcb(plaintext))
            << "probe " << done.id;
    }
    EXPECT_EQ(probes, spec.probeSamples);
}

TEST(EncryptionServer, ReportsConsistentServingInvariants)
{
    const WorkloadSpec spec = probeOnlySpec(5);
    const EncryptionServer server(smallGpu(), smallServe(), kKey);
    const ServeReport report = server.run(spec);

    EXPECT_GE(report.admitted, report.completed.size());
    EXPECT_GT(report.kernelsLaunched, 0u);
    EXPECT_GT(report.totalCycles, 0u);
    EXPECT_GT(report.throughputReqPerSec, 0.0);
    EXPECT_GT(report.meanBusySms, 0.0);
    EXPECT_LE(report.smOccupancy, 1.0);
    for (const auto &done : report.completed) {
        EXPECT_LE(done.arrival, done.launched);
        EXPECT_LT(done.launched, done.completed);
        EXPECT_GT(done.kernelTotalTime, 0.0);
        EXPECT_GT(done.kernelLastRoundTime, 0.0);
        EXPECT_GE(done.batchRequests, 1u);
        EXPECT_LE(done.batchRequests, 2u); // maxBatchRequests.
    }
    // The single-client probe loop keeps one request in flight, so
    // probe latency stats cover exactly probeSamples completions.
    EXPECT_EQ(report.probeLatency.count, spec.probeSamples);
    EXPECT_GT(report.probeLatency.p50, 0.0);
    EXPECT_LE(report.probeLatency.p50, report.probeLatency.p99);
    EXPECT_LE(report.probeLatency.p99, report.probeLatency.max);
}

TEST(EncryptionServer, BackgroundLoadFlowsThroughTheSameMachine)
{
    WorkloadSpec spec = probeOnlySpec(4);
    spec.backgroundMeanGapCycles = 2000.0;
    spec.backgroundLineChoices = {32, 64};
    spec.backgroundSeed = 1234;

    const EncryptionServer server(smallGpu(), smallServe(), kKey);
    const ServeReport report = server.run(spec);

    unsigned probes = 0;
    unsigned tenants = 0;
    const aes::Aes aes(kKey);
    for (const auto &done : report.completed) {
        if (done.isProbe) {
            ++probes;
            continue;
        }
        ++tenants;
        // Background ciphertexts are real encryptions too.
        Rng rng = Rng::stream(spec.backgroundSeed, done.id - 1'000'000'000);
        (void)rng.uniform01(); // The interarrival gap draw.
        (void)rng.below(2);    // The size draw.
        EXPECT_EQ(done.ciphertext,
                  aes.encryptEcb(workloads::randomPlaintext(
                      done.lines, rng)))
            << "tenant " << done.id;
    }
    EXPECT_EQ(probes, spec.probeSamples);
    EXPECT_GT(tenants, 0u);
}

TEST(ServeParallelDeterminism, RerunsAreBitIdentical)
{
    WorkloadSpec spec = probeOnlySpec(4);
    spec.backgroundMeanGapCycles = 3000.0;
    spec.backgroundLineChoices = {32};

    const EncryptionServer server(smallGpu(), smallServe(), kKey);
    const ServeReport first = server.run(spec);
    const ServeReport second = server.run(spec);
    expectIdenticalReports(first, second);
}

TEST(ServeParallelDeterminism, ScenariosIndependentOfWorkerCount)
{
    // The parallel axis of the serve experiments is scenarios, not
    // cycles; a scenario's report must not depend on which worker (or
    // how many siblings) ran it.
    const std::vector<BatchPolicy> policies = {
        BatchPolicy::Fcfs, BatchPolicy::BatchFill, BatchPolicy::Sjf};
    auto run_one = [&](std::size_t i) {
        WorkloadSpec spec = probeOnlySpec(3);
        spec.backgroundMeanGapCycles = 4000.0;
        spec.backgroundLineChoices = {32};
        spec.backgroundSeed = 100 + i;
        const EncryptionServer server(
            smallGpu(7 + i), smallServe(policies[i]), kKey);
        return server.run(spec);
    };

    std::vector<ServeReport> serial;
    for (std::size_t i = 0; i < policies.size(); ++i)
        serial.push_back(run_one(i));

    ThreadPool pool(3);
    const auto parallel =
        pool.parallelMap(policies.size(), run_one);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdenticalReports(serial[i], parallel[i]);
}

TEST(KernelSchedulerLatency, CompletionStampIsPollIntervalInvariant)
{
    // Regression: collectCompleted used to stamp the *poll* cycle as the
    // completion cycle, so coarser polling silently inflated (and
    // quantized) every latency number. The stamp must be the kernel's
    // true finish cycle regardless of how often the caller polls.
    auto run_with_poll = [](Cycle poll_interval) {
        KernelScheduler scheduler(smallGpu(), smallServe(), kKey);
        Rng rng = Rng::stream(7, 0);
        Request request;
        request.id = 0;
        request.arrival = 0;
        request.isProbe = true;
        request.clientId = 0;
        request.plaintext = workloads::randomPlaintext(32, rng);
        std::vector<Request> batch;
        batch.push_back(std::move(request));
        scheduler.launchBatch(std::move(batch), 0);

        for (Cycle now = 0; now <= 500000; ++now) {
            if (now % poll_interval == 0) {
                auto done = scheduler.collectCompleted(now);
                if (!done.empty()) {
                    EXPECT_EQ(done.size(), 1u);
                    const auto snaps = scheduler.takeKernelSnapshots();
                    EXPECT_EQ(snaps.size(), 1u);
                    EXPECT_EQ(snaps.front().finishedAt,
                              done.front().completed);
                    return done.front().completed;
                }
            }
            scheduler.tick();
        }
        ADD_FAILURE() << "kernel never completed";
        return Cycle{0};
    };

    const Cycle fine = run_with_poll(1);
    ASSERT_GT(fine, 0u);
    EXPECT_EQ(run_with_poll(64), fine);
    EXPECT_EQ(run_with_poll(1000), fine);
}

} // namespace
} // namespace rcoal::serve
