/**
 * @file
 * Unit tests for the trace layer's recording primitives: the ring-buffer
 * TraceSink, the Tracer registry, and the Chrome trace exporter.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "rcoal/trace/chrome_trace.hpp"
#include "rcoal/trace/event.hpp"
#include "rcoal/trace/sink.hpp"
#include "rcoal/trace/tracer.hpp"

namespace rcoal::trace {
namespace {

TEST(TraceEvent, EveryKindHasAName)
{
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
        const char *name = eventKindName(static_cast<EventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

TEST(TraceSink, RecordsInOrderBelowCapacity)
{
    TraceSink sink("t", ClockDomain::Core, 8);
    for (Cycle c = 0; c < 5; ++c)
        sink.record(EventKind::SmIssue, c, c * 10, 0, 0);
    EXPECT_EQ(sink.size(), 5u);
    EXPECT_EQ(sink.totalRecorded(), 5u);
    EXPECT_EQ(sink.dropped(), 0u);
    const auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].cycle, i);
        EXPECT_EQ(events[i].a, i * 10);
    }
}

TEST(TraceSink, OverwritesOldestWhenFull)
{
    TraceSink sink("t", ClockDomain::Core, 4);
    for (Cycle c = 0; c < 10; ++c)
        sink.record(EventKind::DramRead, c, 0, 0, 0);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.totalRecorded(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    const auto events = sink.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // The most recent window survives, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].cycle, 6 + i);
}

TEST(TraceSink, ClearForgetsEverything)
{
    TraceSink sink("t", ClockDomain::Memory, 4);
    sink.record(EventKind::DramActivate, 1, 2, 3, 4);
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.totalRecorded(), 0u);
    EXPECT_TRUE(sink.snapshot().empty());
}

TEST(TraceSink, ClearResetsDropAccountingLikeFresh)
{
    // Regression test for the drop counter: dropped() used to be
    // derived as totalRecorded - size, which only works while the two
    // counters move in lockstep. It is now an explicit counter that
    // clear() (and therefore GpuMachine::reset()) must zero — a sink
    // reused after clear() must account drops exactly like a fresh one.
    TraceSink used("t", ClockDomain::Core, 4);
    for (Cycle c = 0; c < 11; ++c)
        used.record(EventKind::SmIssue, c, 0, 0, 0);
    EXPECT_EQ(used.dropped(), 7u);
    used.clear();
    EXPECT_EQ(used.dropped(), 0u);

    TraceSink fresh("t", ClockDomain::Core, 4);
    for (Cycle c = 0; c < 6; ++c) {
        used.record(EventKind::SmIssue, c, 0, 0, 0);
        fresh.record(EventKind::SmIssue, c, 0, 0, 0);
    }
    EXPECT_EQ(used.dropped(), fresh.dropped());
    EXPECT_EQ(used.dropped(), 2u);
    EXPECT_EQ(used.totalRecorded(), fresh.totalRecorded());
    const auto a = used.snapshot();
    const auto b = fresh.snapshot();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].cycle, b[i].cycle);
}

TEST(TraceSink, StampsComponentId)
{
    TraceSink sink("t", ClockDomain::Core, 4);
    sink.setComponentId(7);
    sink.record(EventKind::XbarGrant, 0, 0, 0, 0);
    EXPECT_EQ(sink.snapshot().at(0).component, 7);
}

TEST(Tracer, SinkIsCreatedOnceAndFound)
{
    Tracer tracer(16);
    TraceSink &a = tracer.sink("dram0", ClockDomain::Memory, 0);
    TraceSink &again = tracer.sink("dram0");
    EXPECT_EQ(&a, &again);
    EXPECT_EQ(tracer.find("dram0"), &a);
    EXPECT_EQ(tracer.find("nope"), nullptr);
    EXPECT_EQ(a.domain(), ClockDomain::Memory);
}

TEST(Tracer, TotalsAggregateAcrossSinks)
{
    Tracer tracer(2);
    tracer.sink("a").record(EventKind::SmIssue, 0, 0, 0, 0);
    for (int i = 0; i < 5; ++i)
        tracer.sink("b").record(EventKind::SmIssue, 0, 0, 0, 0);
    EXPECT_EQ(tracer.totalRecorded(), 6u);
    EXPECT_EQ(tracer.totalDropped(), 3u); // b kept 2 of 5.
}

TEST(ChromeTrace, WritesLoadableJson)
{
    Tracer tracer(16);
    tracer.setCoreCyclesPerMemCycle(1.5);
    tracer.sink("sm0", ClockDomain::Core)
        .record(EventKind::SmIssue, 10, 1, 2, 3);
    TraceSink &dram = tracer.sink("dram0", ClockDomain::Memory);
    dram.record(EventKind::DramActivate, 4, 0, 9, 0);
    dram.record(EventKind::DramRead, 6, 0, 9, 18);

    const std::string path =
        testing::TempDir() + "rcoal_chrome_trace_test.json";
    writeChromeTrace(path, tracer, /*dram_burst_cycles=*/2);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    std::remove(path.c_str());

    // Loose structural checks: the metadata names both sinks, the read
    // becomes a span ("X"), and memory-domain stamps are scaled by 1.5.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"sm0\""), std::string::npos);
    EXPECT_NE(json.find("\"dram0\""), std::string::npos);
    EXPECT_NE(json.find("\"sm.issue\""), std::string::npos);
    EXPECT_NE(json.find("\"dram.act\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    // DramActivate at mem cycle 4 -> ts 6.000 on the core timeline.
    EXPECT_NE(json.find("\"ts\": 6.000"), std::string::npos);
    // DramRead burst at mem cycle 18 -> ts 27.000, dur 3.000.
    EXPECT_NE(json.find("\"ts\": 27.000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 3.000"), std::string::npos);
    // Balanced outer object (cheap well-formedness sanity).
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
}

TEST(TraceMacro, CompiledStateMatchesBuildOption)
{
    // The macro must be a no-op on a null sink either way; with hooks
    // compiled in, a real sink records.
    TraceSink *null_sink = nullptr;
    RCOAL_TRACE(null_sink, SmIssue, 0, 0, 0, 0);

    TraceSink sink("t", ClockDomain::Core, 4);
    RCOAL_TRACE(&sink, SmIssue, 1, 2, 3, 4);
#if RCOAL_TRACE_ENABLED
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.snapshot().at(0).cycle, 1u);
#else
    EXPECT_EQ(sink.size(), 0u);
#endif
}

} // namespace
} // namespace rcoal::trace
