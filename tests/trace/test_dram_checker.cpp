/**
 * @file
 * Unit tests for the DRAM protocol checker: a legal command stream is
 * clean, and each timing rule trips on the minimal violating stream.
 */

#include <gtest/gtest.h>

#include "rcoal/trace/dram_checker.hpp"

namespace rcoal::trace {
namespace {

DramProtocolChecker::Params
params()
{
    DramProtocolChecker::Params p;
    p.banks = 4;
    p.tCL = 12;
    p.tRP = 12;
    p.tRC = 40;
    p.tRAS = 28;
    p.tCCD = 2;
    p.tRCD = 12;
    p.tRRD = 6;
    p.tRFC = 83;
    p.burstCycles = 2;
    return p;
}

DramProtocolChecker
collect()
{
    return DramProtocolChecker(params(),
                               DramProtocolChecker::Mode::Collect);
}

/** The single rule that tripped, or "" when clean / multiple. */
std::string
soleRule(const DramProtocolChecker &checker)
{
    if (checker.violations().size() != 1)
        return "";
    return checker.violations().front().rule;
}

TEST(DramChecker, LegalOpenReadPrechargeSequenceIsClean)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 12, 24, 2);  // tRCD met, burst at now + tCL.
    checker.onRead(0, 5, 14, 26, 2);  // tCCD met, bus back-to-back.
    checker.onPrecharge(0, 5, 28);    // tRAS met, bursts drained.
    checker.onActivate(0, 9, 40);     // tRP and tRC met.
    EXPECT_TRUE(checker.clean()) << checker.violations().front().detail;
    EXPECT_EQ(checker.commandsChecked(), 5u);
}

TEST(DramChecker, ReadBeforeTrcdTrips)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 11, 23, 2); // One cycle early.
    EXPECT_EQ(soleRule(checker), "tRCD");
}

TEST(DramChecker, ReadToClosedOrWrongRowTrips)
{
    auto checker = collect();
    checker.onRead(1, 3, 50, 62, 2);
    EXPECT_EQ(soleRule(checker), "rd-closed-bank");

    auto checker2 = collect();
    checker2.onActivate(0, 5, 0);
    checker2.onRead(0, 6, 12, 24, 2);
    EXPECT_EQ(soleRule(checker2), "rd-row-mismatch");
}

TEST(DramChecker, BackToBackReadsBeforeTccdTrip)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 12, 24, 2);
    checker.onRead(0, 5, 13, 26, 2); // tCCD = 2, only 1 elapsed.
    EXPECT_EQ(soleRule(checker), "tCCD");
}

TEST(DramChecker, OverlappingBurstsOnTheSharedBusTrip)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onActivate(1, 7, 6); // tRRD met.
    checker.onRead(0, 5, 12, 30, 2); // Burst [30, 32), after tCL: legal.
    checker.onRead(1, 7, 18, 31, 2); // Starts inside the first burst.
    EXPECT_EQ(soleRule(checker), "bus-overlap");
}

TEST(DramChecker, BurstBeforeCasLatencyTrips)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 12, 23, 2); // Burst 1 cycle before now + tCL.
    EXPECT_EQ(soleRule(checker), "tCL");
}

TEST(DramChecker, PrechargeBeforeTrasTrips)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onPrecharge(0, 5, 27); // tRAS = 28.
    EXPECT_EQ(soleRule(checker), "tRAS");
}

TEST(DramChecker, PrechargeWhileBurstInFlightTrips)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 20, 32, 2); // Burst runs [32, 34).
    checker.onPrecharge(0, 5, 33);   // tRAS fine, burst not drained.
    EXPECT_EQ(soleRule(checker), "rd-to-pre");
}

TEST(DramChecker, ActivateBeforeTrpTrips)
{
    // PRE late enough (40) that tRC (40 from the ACT at 0) is met well
    // before tRP (40 + 12), isolating the tRP rule.
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onPrecharge(0, 5, 40);
    checker.onActivate(0, 6, 45); // tRP wants 52.
    EXPECT_EQ(soleRule(checker), "tRP");
}

TEST(DramChecker, ActivateAtExactTrcAndTrpBoundaryIsLegal)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onPrecharge(0, 5, 28);
    checker.onActivate(0, 6, 40); // Exactly tRC and PRE + tRP.
    EXPECT_TRUE(checker.clean());
}

TEST(DramChecker, ActivatesInDifferentBanksRespectTrrd)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onActivate(1, 5, 5); // tRRD = 6.
    EXPECT_EQ(soleRule(checker), "tRRD");
}

TEST(DramChecker, CommandsInsideRefreshWindowTrip)
{
    auto checker = collect();
    checker.onRefresh(100);
    checker.onActivate(0, 5, 150); // tRFC = 83 -> earliest 183.
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations().front().rule, "tRFC");
    checker.onActivate(1, 5, 183); // Legal again.
    EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(DramChecker, RefreshWhileBankInsideTrasTrips)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRefresh(20); // Bank 0 open, only 20 < tRAS elapsed.
    EXPECT_EQ(soleRule(checker), "ref-tRAS");
}

TEST(DramChecker, RefreshWhileBusBusyTrips)
{
    auto checker = collect();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 12, 24, 2);
    checker.onPrecharge(0, 5, 28);
    checker.onRefresh(25); // Mid-burst ([24, 26)).
    ASSERT_FALSE(checker.clean());
    EXPECT_EQ(checker.violations().front().rule, "ref-bus-busy");
}

// ---------------------------------------------------------------------
// Bank-group and pseudo-channel rules (group-aware backends only).

/** 4 banks in 2 groups across 2 pseudo-channels, long windows on. */
DramProtocolChecker::Params
awareParams()
{
    DramProtocolChecker::Params p = params();
    p.bankGroupAware = true;
    p.tCCDLong = 4;
    p.tRRDLong = 8;
    p.bankGroups = 2;     // groupOf(bank) = bank % 2.
    p.pseudoChannels = 2; // pcOf(bank) = bank / 2.
    return p;
}

DramProtocolChecker
collectAware()
{
    return DramProtocolChecker(awareParams(),
                               DramProtocolChecker::Mode::Collect);
}

TEST(DramChecker, SameGroupReadsBeforeTccdLongTrip)
{
    auto checker = collectAware();
    checker.onActivate(0, 5, 0);
    checker.onRead(0, 5, 12, 24, 2);
    checker.onRead(0, 5, 15, 27, 2); // Short tCCD met, long (4) not.
    EXPECT_EQ(soleRule(checker), "tCCD_L");
}

TEST(DramChecker, DifferentGroupReadsNeedOnlyTheShortWindow)
{
    auto checker = collectAware();
    checker.onActivate(0, 5, 0); // Group 0, PC 0.
    checker.onActivate(1, 5, 6); // Group 1, PC 0: tRRD met.
    checker.onRead(0, 5, 16, 28, 2); // Both reads after tRCD.
    checker.onRead(1, 5, 18, 30, 2); // Cross-group: tCCD_S = 2 only.
    EXPECT_TRUE(checker.clean()) << checker.violations().front().detail;
}

TEST(DramChecker, SameGroupActivatesBeforeTrrdLongTrip)
{
    auto checker = collectAware();
    checker.onActivate(0, 5, 0);
    checker.onActivate(2, 5, 7); // Same group: tRRD met, tRRD_L (8) not.
    EXPECT_EQ(soleRule(checker), "tRRD_L");
}

TEST(DramChecker, SamePseudoChannelReadsBeforeTccdShortTrip)
{
    auto checker = collectAware();
    checker.onActivate(0, 5, 0); // Group 0, PC 0.
    checker.onActivate(1, 5, 6); // Group 1, PC 0.
    checker.onRead(0, 5, 18, 30, 2);
    checker.onRead(1, 5, 19, 32, 2); // Same PC one cycle later; the
                                     // burst itself is pushed past the
                                     // first so only tCCD_S trips.
    EXPECT_EQ(soleRule(checker), "tCCD_S");
}

TEST(DramChecker, PseudoChannelBusesAreIndependent)
{
    auto checker = collectAware();
    checker.onActivate(0, 5, 0); // Group 0, PC 0.
    checker.onActivate(3, 5, 6); // Group 1, PC 1: tRRD met.
    checker.onRead(0, 5, 17, 29, 2); // Burst [29, 31) on PC 0's bus.
    checker.onRead(3, 5, 18, 30, 2); // [30, 32) on PC 1's: overlapping
                                     // bursts are legal across PCs.
    EXPECT_TRUE(checker.clean()) << checker.violations().front().detail;
}

TEST(DramChecker, ReplayValidatesRecordedEvents)
{
    std::vector<TraceEvent> events;
    TraceEvent act;
    act.kind = EventKind::DramActivate;
    act.cycle = 0;
    act.a = 0;
    act.b = 5;
    events.push_back(act);
    TraceEvent rd;
    rd.kind = EventKind::DramRead;
    rd.cycle = 11; // tRCD violation.
    rd.a = 0;
    rd.b = 5;
    rd.c = 23;
    events.push_back(rd);
    TraceEvent other; // Non-DRAM events are skipped.
    other.kind = EventKind::SmIssue;
    events.push_back(other);

    auto checker = collect();
    checker.replay(events);
    EXPECT_EQ(checker.commandsChecked(), 2u);
    EXPECT_EQ(soleRule(checker), "tRCD");
}

TEST(DramCheckerDeathTest, PanicModeAborts)
{
    DramProtocolChecker checker(params(),
                                DramProtocolChecker::Mode::Panic);
    checker.onActivate(0, 5, 0);
    EXPECT_DEATH(checker.onRead(0, 5, 3, 15, 2), "tRCD");
}

} // namespace
} // namespace rcoal::trace
