/**
 * @file
 * Integration test: the tracer wired through a full serve run. The
 * sink registry and kernel snapshots work in every build; hot-path
 * event recording additionally needs the RCOAL_TRACE build option, so
 * the expectations on recorded volume flip with it.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "rcoal/serve/server.hpp"
#include "rcoal/trace/chrome_trace.hpp"
#include "rcoal/trace/sink.hpp"
#include "rcoal/trace/tracer.hpp"

namespace rcoal::serve {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(TraceIntegration, ServeRunWiresSinksAndExportsChromeTrace)
{
    sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    gpu.numSms = 4;
    ServeConfig serve;
    serve.queueCapacity = 16;
    serve.maxBatchRequests = 2;
    serve.batchTimeoutCycles = 2000;
    serve.smsPerKernel = 2;
    WorkloadSpec spec;
    spec.probeSamples = 3;
    spec.probeLines = 32;
    spec.probeThinkCycles = 100;
    spec.backgroundMeanGapCycles = 0.0;

    trace::Tracer tracer(/*capacity_per_sink=*/1 << 14);
    const EncryptionServer server(gpu, serve, kKey);
    const ServeReport report = server.run(spec, &tracer);

    // The machine registered its component sinks plus the serve sink.
    ASSERT_NE(tracer.find("serve"), nullptr);
    ASSERT_NE(tracer.find("sm0"), nullptr);
    ASSERT_NE(tracer.find("xbar.req"), nullptr);
    ASSERT_NE(tracer.find("dram0"), nullptr);
    EXPECT_EQ(tracer.find("dram0")->domain(),
              trace::ClockDomain::Memory);

    // Per-kernel counter snapshots ride along in every build.
    ASSERT_FALSE(report.kernels.empty());
    for (const KernelSnapshot &snap : report.kernels) {
        EXPECT_GT(snap.batchRequests, 0u);
        EXPECT_GT(snap.finishedAt, snap.launchedAt);
        EXPECT_GT(snap.cycles, 0u);
        EXPECT_GT(snap.coalescedAccesses, 0u);
    }

#if RCOAL_TRACE_ENABLED
    // Hooks compiled in: the run must have recorded real events on the
    // serve timeline and inside the machine.
    EXPECT_GT(tracer.totalRecorded(), 0u);
    EXPECT_GT(tracer.find("serve")->totalRecorded(), 0u);
#else
    // Hooks compiled out: the sinks exist but stay empty for free.
    EXPECT_EQ(tracer.totalRecorded(), 0u);
#endif

    // The exporter produces a Chrome/Perfetto-loadable file either way
    // (metadata-only when no events were recorded).
    const std::string path =
        testing::TempDir() + "rcoal_serve_trace_test.json";
    writeChromeTrace(path, tracer, gpu.burstCycles);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"serve\""), std::string::npos);
#if RCOAL_TRACE_ENABLED
    EXPECT_NE(json.find("\"serve.launch\""), std::string::npos);
    EXPECT_NE(json.find("\"serve.complete\""), std::string::npos);
#endif
}

TEST(TraceIntegration, TracedRunIsDeterministicallyIdenticalToUntraced)
{
    // Attaching a tracer must be observationally free: same completions,
    // same cycle counts, traced or not.
    sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    gpu.numSms = 4;
    ServeConfig serve;
    serve.queueCapacity = 16;
    serve.maxBatchRequests = 2;
    serve.batchTimeoutCycles = 2000;
    serve.smsPerKernel = 2;
    WorkloadSpec spec;
    spec.probeSamples = 3;
    spec.probeThinkCycles = 100;

    const EncryptionServer server(gpu, serve, kKey);
    const ServeReport untraced = server.run(spec);
    trace::Tracer tracer(1 << 12);
    const ServeReport traced = server.run(spec, &tracer);

    ASSERT_EQ(untraced.completed.size(), traced.completed.size());
    for (std::size_t i = 0; i < untraced.completed.size(); ++i) {
        EXPECT_EQ(untraced.completed[i].completed,
                  traced.completed[i].completed);
        EXPECT_EQ(untraced.completed[i].ciphertext,
                  traced.completed[i].ciphertext);
    }
    EXPECT_EQ(untraced.totalCycles, traced.totalCycles);
}

} // namespace
} // namespace rcoal::serve
