/**
 * @file
 * Unit tests for CoalescingPolicy.
 */

#include <gtest/gtest.h>

#include "rcoal/core/policy.hpp"

namespace rcoal::core {
namespace {

TEST(Policy, FactoryHelpers)
{
    const auto base = CoalescingPolicy::baseline();
    EXPECT_EQ(base.mechanism, Mechanism::Baseline);
    EXPECT_EQ(base.numSubwarps, 1u);
    EXPECT_FALSE(base.randomThreads);

    const auto off = CoalescingPolicy::disabled();
    EXPECT_EQ(off.mechanism, Mechanism::Disabled);

    const auto fss = CoalescingPolicy::fss(8);
    EXPECT_EQ(fss.mechanism, Mechanism::Fss);
    EXPECT_EQ(fss.numSubwarps, 8u);
    EXPECT_FALSE(fss.randomThreads);

    const auto fss_rts = CoalescingPolicy::fss(4, true);
    EXPECT_TRUE(fss_rts.randomThreads);

    const auto rss = CoalescingPolicy::rss(16);
    EXPECT_EQ(rss.mechanism, Mechanism::Rss);
    EXPECT_EQ(rss.sizing, RssSizing::Skewed);

    const auto rss_norm =
        CoalescingPolicy::rss(4, false, RssSizing::Normal);
    EXPECT_EQ(rss_norm.sizing, RssSizing::Normal);
}

TEST(Policy, Names)
{
    EXPECT_EQ(CoalescingPolicy::baseline().name(), "Baseline");
    EXPECT_EQ(CoalescingPolicy::disabled().name(), "NoCoalescing");
    EXPECT_EQ(CoalescingPolicy::fss(8).name(), "FSS(M=8)");
    EXPECT_EQ(CoalescingPolicy::fss(8, true).name(), "FSS+RTS(M=8)");
    EXPECT_EQ(CoalescingPolicy::rss(2).name(), "RSS(M=2)");
    EXPECT_EQ(CoalescingPolicy::rss(2, true).name(), "RSS+RTS(M=2)");
    EXPECT_EQ(CoalescingPolicy::rss(2, false, RssSizing::Normal).name(),
              "RSS(M=2,normal)");
}

TEST(Policy, RandomizationFlag)
{
    EXPECT_FALSE(CoalescingPolicy::baseline().isRandomized());
    EXPECT_FALSE(CoalescingPolicy::disabled().isRandomized());
    EXPECT_FALSE(CoalescingPolicy::fss(8).isRandomized());
    EXPECT_TRUE(CoalescingPolicy::fss(8, true).isRandomized());
    EXPECT_TRUE(CoalescingPolicy::rss(8).isRandomized());
    // RSS with one subwarp has nothing to randomize (sizes are fixed).
    EXPECT_FALSE(CoalescingPolicy::rss(1).isRandomized());
}

TEST(Policy, ValidationAcceptsLegalRange)
{
    for (unsigned m : {1u, 2u, 16u, 32u}) {
        CoalescingPolicy::fss(m).validate(32);
        CoalescingPolicy::rss(m).validate(32);
    }
    CoalescingPolicy::baseline().validate(32);
    CoalescingPolicy::disabled().validate(32);
}

TEST(PolicyDeathTest, ValidationRejectsOutOfRangeSubwarps)
{
    EXPECT_EXIT(CoalescingPolicy::fss(33).validate(32),
                testing::ExitedWithCode(1), "num-subwarp");
    EXPECT_EXIT(CoalescingPolicy::fss(0).validate(32),
                testing::ExitedWithCode(1), "num-subwarp");
}

TEST(PolicyDeathTest, ValidationRejectsNegativeSigma)
{
    auto p = CoalescingPolicy::rss(4, false, RssSizing::Normal);
    p.normalSigma = -1.0;
    EXPECT_EXIT(p.validate(32), testing::ExitedWithCode(1), "Sigma");
}

TEST(Policy, Equality)
{
    EXPECT_EQ(CoalescingPolicy::fss(8), CoalescingPolicy::fss(8));
    EXPECT_NE(CoalescingPolicy::fss(8), CoalescingPolicy::fss(8, true));
    EXPECT_NE(CoalescingPolicy::fss(8), CoalescingPolicy::rss(8));
}

} // namespace
} // namespace rcoal::core
