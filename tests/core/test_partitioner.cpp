/**
 * @file
 * Unit and property tests for SubwarpPartitioner - the sampling heart of
 * FSS, RSS and RTS.
 */

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <numeric>
#include <set>
#include <tuple>

#include "rcoal/common/logging.hpp"
#include "rcoal/core/partitioner.hpp"

namespace rcoal::core {
namespace {

TEST(Partitioner, BaselineIsSingleSubwarp)
{
    SubwarpPartitioner p(CoalescingPolicy::baseline(), 32);
    Rng rng(1);
    const auto part = p.draw(rng);
    EXPECT_EQ(part.numSubwarps(), 1u);
    EXPECT_EQ(part.warpSize(), 32u);
}

TEST(Partitioner, DisabledIsOneThreadPerSubwarp)
{
    SubwarpPartitioner p(CoalescingPolicy::disabled(), 32);
    Rng rng(2);
    const auto part = p.draw(rng);
    EXPECT_EQ(part.numSubwarps(), 32u);
    for (unsigned s : part.sizes())
        EXPECT_EQ(s, 1u);
}

TEST(Partitioner, FssSizesEvenSplit)
{
    SubwarpPartitioner p(CoalescingPolicy::fss(8), 32);
    EXPECT_EQ(p.fixedSizes(), std::vector<unsigned>(8, 4));
}

TEST(Partitioner, FssSizesWithRemainder)
{
    SubwarpPartitioner p(CoalescingPolicy::fss(5), 32);
    const auto sizes = p.fixedSizes();
    // 32 = 7+7+6+6+6.
    EXPECT_EQ(sizes, (std::vector<unsigned>{7, 7, 6, 6, 6}));
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), 32u);
}

TEST(Partitioner, FssIsDeterministicAndInOrder)
{
    SubwarpPartitioner p(CoalescingPolicy::fss(4), 32);
    Rng rng(3);
    const auto a = p.draw(rng);
    const auto b = p.draw(rng);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(a.isInOrder());
    EXPECT_EQ(a.sizes(), std::vector<unsigned>(4, 8));
}

TEST(Partitioner, FssRtsShufflesThreadsButKeepsSizes)
{
    SubwarpPartitioner p(CoalescingPolicy::fss(4, true), 32);
    Rng rng(4);
    bool saw_out_of_order = false;
    for (int trial = 0; trial < 20; ++trial) {
        const auto part = p.draw(rng);
        EXPECT_EQ(part.sizes(), std::vector<unsigned>(4, 8));
        saw_out_of_order |= !part.isInOrder();
    }
    EXPECT_TRUE(saw_out_of_order);
}

TEST(Partitioner, RtsMappingIsUniformPerThread)
{
    // Under FSS+RTS with M=2 every thread should land in subwarp 0
    // about half the time.
    SubwarpPartitioner p(CoalescingPolicy::fss(2, true), 8);
    Rng rng(5);
    std::array<int, 8> in_zero{};
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
        const auto part = p.draw(rng);
        for (ThreadId t = 0; t < 8; ++t) {
            if (part.subwarpOf(t) == 0)
                ++in_zero[t];
        }
    }
    for (int count : in_zero)
        EXPECT_NEAR(count, kDraws / 2.0, kDraws / 2.0 * 0.05);
}

TEST(Partitioner, SkewedSizesFormValidCompositions)
{
    SubwarpPartitioner p(CoalescingPolicy::rss(4), 32);
    Rng rng(6);
    for (int trial = 0; trial < 500; ++trial) {
        const auto sizes = p.sampleSkewedSizes(rng);
        ASSERT_EQ(sizes.size(), 4u);
        unsigned sum = 0;
        for (unsigned s : sizes) {
            EXPECT_GE(s, 1u);
            sum += s;
        }
        EXPECT_EQ(sum, 32u);
    }
}

TEST(Partitioner, SkewedSizesAreUniformOverCompositions)
{
    // N=5, M=2: compositions (1,4),(2,3),(3,2),(4,1) each w.p. 1/4.
    SubwarpPartitioner p(CoalescingPolicy::rss(2), 5);
    Rng rng(7);
    std::map<std::vector<unsigned>, int> counts;
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[p.sampleSkewedSizes(rng)];
    EXPECT_EQ(counts.size(), 4u);
    for (const auto &[sizes, count] : counts)
        EXPECT_NEAR(count, kDraws / 4.0, kDraws / 4.0 * 0.07);
}

TEST(Partitioner, SkewedSizesProduceFullSizeRange)
{
    // The skewed distribution must make very large subwarps possible
    // (Fig. 9: sizes up to N - M + 1).
    SubwarpPartitioner p(CoalescingPolicy::rss(4), 32);
    Rng rng(8);
    unsigned max_seen = 0;
    for (int i = 0; i < 5000; ++i) {
        for (unsigned s : p.sampleSkewedSizes(rng))
            max_seen = std::max(max_seen, s);
    }
    EXPECT_GE(max_seen, 25u);
}

TEST(Partitioner, NormalSizesConcentrateAroundMean)
{
    auto policy = CoalescingPolicy::rss(4, false, RssSizing::Normal);
    policy.normalSigma = 1.0;
    SubwarpPartitioner p(policy, 32);
    Rng rng(9);
    double sum = 0.0;
    unsigned max_seen = 0;
    constexpr int kDraws = 5000;
    for (int i = 0; i < kDraws; ++i) {
        const auto sizes = p.sampleNormalSizes(rng);
        unsigned total = 0;
        for (unsigned s : sizes) {
            EXPECT_GE(s, 1u);
            total += s;
            max_seen = std::max(max_seen, s);
            sum += s;
        }
        EXPECT_EQ(total, 32u);
    }
    EXPECT_NEAR(sum / (kDraws * 4), 8.0, 0.05);
    // Unlike the skewed distribution, sizes stay near N/M = 8.
    EXPECT_LT(max_seen, 16u);
}

TEST(Partitioner, RssDrawsVaryBetweenLaunches)
{
    SubwarpPartitioner p(CoalescingPolicy::rss(4), 32);
    Rng rng(10);
    std::set<std::vector<unsigned>> distinct;
    for (int i = 0; i < 50; ++i)
        distinct.insert(p.draw(rng).sizes());
    EXPECT_GT(distinct.size(), 10u);
}

TEST(Partitioner, RssWithoutRtsKeepsThreadsInOrder)
{
    SubwarpPartitioner p(CoalescingPolicy::rss(4), 32);
    Rng rng(11);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(p.draw(rng).isInOrder());
}

TEST(Partitioner, RssRtsShufflesThreads)
{
    SubwarpPartitioner p(CoalescingPolicy::rss(4, true), 32);
    Rng rng(12);
    bool saw_out_of_order = false;
    for (int i = 0; i < 50; ++i)
        saw_out_of_order |= !p.draw(rng).isInOrder();
    EXPECT_TRUE(saw_out_of_order);
}

TEST(Partitioner, SameSeedSameDrawSequence)
{
    SubwarpPartitioner p(CoalescingPolicy::rss(8, true), 32);
    Rng a(13);
    Rng b(13);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(p.draw(a), p.draw(b));
}

TEST(Partitioner, SubwarpCountEqualsWarpSizeDegeneratesToDisabled)
{
    SubwarpPartitioner fss32(CoalescingPolicy::fss(32), 32);
    Rng rng(14);
    const auto part = fss32.draw(rng);
    for (unsigned s : part.sizes())
        EXPECT_EQ(s, 1u);
}

/** Parameterized sweep: every (mechanism, M) draw is a valid partition. */
class PartitionerSweep
    : public testing::TestWithParam<std::tuple<unsigned, bool, bool>>
{
};

TEST_P(PartitionerSweep, DrawsAreAlwaysValid)
{
    const auto [m, rss, rts] = GetParam();
    const auto policy = rss ? CoalescingPolicy::rss(m, rts)
                            : CoalescingPolicy::fss(m, rts);
    SubwarpPartitioner p(policy, 32);
    Rng rng(15 + m);
    for (int trial = 0; trial < 100; ++trial) {
        const auto part = p.draw(rng);
        part.validate(); // panics on violation
        EXPECT_EQ(part.warpSize(), 32u);
        EXPECT_EQ(part.numSubwarps(), m);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, PartitionerSweep,
    testing::Combine(testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                     testing::Bool(), testing::Bool()),
    [](const auto &info) {
        return strprintf("M%u_%s%s", std::get<0>(info.param),
                         std::get<1>(info.param) ? "RSS" : "FSS",
                         std::get<2>(info.param) ? "_RTS" : "");
    });

} // namespace
} // namespace rcoal::core
