/**
 * @file
 * Unit tests for the subwarp-aware coalescer, including the paper's
 * worked examples (Fig. 2 and Fig. 10).
 */

#include <gtest/gtest.h>

#include <set>

#include "rcoal/core/coalescer.hpp"
#include "rcoal/core/partitioner.hpp"
#include "rcoal/theory/coalesced_distribution.hpp"

namespace rcoal::core {
namespace {

std::vector<LaneRequest>
lanes(std::initializer_list<Addr> addrs, std::uint32_t size = 4)
{
    std::vector<LaneRequest> out;
    ThreadId tid = 0;
    for (Addr a : addrs)
        out.push_back({tid++, a, size, true});
    return out;
}

TEST(Coalescer, PerfectlyCoalescedWarp)
{
    const Coalescer c(64);
    std::vector<LaneRequest> reqs;
    for (ThreadId t = 0; t < 16; ++t)
        reqs.push_back({t, 0x1000 + Addr{t} * 4, 4, true});
    const auto out = c.coalesce(reqs, SubwarpPartition::single(16));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x1000u);
    EXPECT_EQ(out[0].threads.size(), 16u);
}

TEST(Coalescer, Figure2Case1SingleSubwarp)
{
    // Fig. 2, Case 1: 4 threads, num-subwarp = 1; threads 1 and 2 share
    // a block -> 3 coalesced accesses.
    const Coalescer c(64);
    const auto reqs = lanes({0x000, 0x100, 0x104, 0x200});
    const auto out = c.coalesce(reqs, SubwarpPartition::single(4));
    EXPECT_EQ(out.size(), 3u);
}

TEST(Coalescer, Figure2Case2TwoSubwarps)
{
    // Fig. 2, Case 2: same requests, num-subwarp = 2 splits the sharing
    // pair -> 4 accesses (two per subwarp).
    const Coalescer c(64);
    const auto reqs = lanes({0x000, 0x100, 0x104, 0x200});
    const auto part = SubwarpPartition::fromSizes({2, 2});
    const auto out = c.coalesce(reqs, part);
    EXPECT_EQ(out.size(), 4u);
}

TEST(Coalescer, Figure10aFssRts)
{
    // Fig. 10a: FSS+RTS, 4 threads in 2 subwarps of size 2 with
    // shuffled threads {0,2} and {1,3}: the sharing pair (1,2) is
    // split -> 4 accesses.
    const Coalescer c(64);
    const auto reqs = lanes({0x000, 0x100, 0x104, 0x200});
    const SubwarpPartition part({0, 1, 0, 1}, 2);
    EXPECT_EQ(c.coalesce(reqs, part).size(), 4u);
}

TEST(Coalescer, Figure10bRssRts)
{
    // Fig. 10b: RSS+RTS with sizes {1, 3}; threads 1, 2 end up in the
    // same subwarp -> 3 accesses.
    const Coalescer c(64);
    const auto reqs = lanes({0x000, 0x100, 0x104, 0x200});
    const SubwarpPartition part({1, 1, 1, 0}, 2);
    EXPECT_EQ(c.coalesce(reqs, part).size(), 3u);
}

TEST(Coalescer, OneSubwarpPerThreadDisablesCoalescing)
{
    const Coalescer c(64);
    std::vector<LaneRequest> reqs;
    for (ThreadId t = 0; t < 32; ++t)
        reqs.push_back({t, 0x1000, 4, true}); // all identical!
    const auto part = SubwarpPartition::fromSizes(
        std::vector<unsigned>(32, 1));
    EXPECT_EQ(c.coalesce(reqs, part).size(), 32u);
    EXPECT_EQ(c.countAccesses(reqs, part), 32u);
}

TEST(Coalescer, InactiveLanesIgnored)
{
    const Coalescer c(64);
    std::vector<LaneRequest> reqs = lanes({0x000, 0x040, 0x080, 0x0c0});
    reqs[1].active = false;
    reqs[3].active = false;
    const auto out = c.coalesce(reqs, SubwarpPartition::single(4));
    EXPECT_EQ(out.size(), 2u);
    for (const auto &access : out)
        EXPECT_EQ(access.threads.size(), 1u);
}

TEST(Coalescer, AllLanesInactiveYieldsNothing)
{
    const Coalescer c(64);
    std::vector<LaneRequest> reqs = lanes({0x000, 0x040});
    reqs[0].active = false;
    reqs[1].active = false;
    EXPECT_TRUE(c.coalesce(reqs, SubwarpPartition::single(2)).empty());
    EXPECT_EQ(c.countAccesses(reqs, SubwarpPartition::single(2)), 0u);
}

TEST(Coalescer, RequestStraddlingBlockBoundary)
{
    const Coalescer c(64);
    // A 16-byte request starting 8 bytes before a block boundary
    // touches two blocks.
    std::vector<LaneRequest> reqs{{0, 0x38, 16, true}};
    const auto out = c.coalesce(reqs, SubwarpPartition::single(1));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].blockAddr, 0x00u);
    EXPECT_EQ(out[1].blockAddr, 0x40u);
}

TEST(Coalescer, BlockAlignment)
{
    const Coalescer c(128);
    EXPECT_EQ(c.blockAlign(0x0), 0x0u);
    EXPECT_EQ(c.blockAlign(0x7f), 0x0u);
    EXPECT_EQ(c.blockAlign(0x80), 0x80u);
    EXPECT_EQ(c.blockAlign(0x1ff), 0x180u);
    EXPECT_EQ(c.blockSize(), 128u);
}

TEST(Coalescer, OutputGroupedBySubwarpThenAddress)
{
    const Coalescer c(64);
    const auto reqs = lanes({0x200, 0x000, 0x100, 0x040});
    const auto part = SubwarpPartition::fromSizes({2, 2});
    const auto out = c.coalesce(reqs, part);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 1; i < out.size(); ++i) {
        EXPECT_TRUE(out[i - 1].sid < out[i].sid ||
                    (out[i - 1].sid == out[i].sid &&
                     out[i - 1].blockAddr < out[i].blockAddr));
    }
}

TEST(Coalescer, CountMatchesCoalesceSize)
{
    const Coalescer c(64);
    Rng rng(44);
    SubwarpPartitioner partitioner(CoalescingPolicy::rss(4, true), 32);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<LaneRequest> reqs;
        for (ThreadId t = 0; t < 32; ++t)
            reqs.push_back({t, rng.below(16) * 64, 4, true});
        const auto part = partitioner.draw(rng);
        EXPECT_EQ(c.countAccesses(reqs, part),
                  c.coalesce(reqs, part).size());
    }
}

TEST(Coalescer, EveryActiveLaneAppearsExactlyOncePerTouchedBlock)
{
    const Coalescer c(64);
    Rng rng(45);
    SubwarpPartitioner partitioner(CoalescingPolicy::fss(8, true), 32);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<LaneRequest> reqs;
        for (ThreadId t = 0; t < 32; ++t)
            reqs.push_back({t, rng.below(1024) * 4, 4, true});
        const auto part = partitioner.draw(rng);
        const auto out = c.coalesce(reqs, part);
        std::multiset<ThreadId> seen;
        for (const auto &access : out) {
            for (ThreadId t : access.threads) {
                seen.insert(t);
                // The lane's subwarp must match the access's.
                EXPECT_EQ(part.subwarpOf(t), access.sid);
            }
        }
        EXPECT_EQ(seen.size(), 32u); // 4-byte aligned: 1 block each.
    }
}

TEST(Coalescer, EmpiricalMeanMatchesDefinitionOne)
{
    // Monte-Carlo check of Definition 1: 32 threads over 16 blocks,
    // single subwarp; mean coalesced accesses must match the exact
    // distribution N_{32,16}.
    const Coalescer c(64);
    Rng rng(46);
    const auto part = SubwarpPartition::single(32);
    double sum = 0.0;
    constexpr int kTrials = 20000;
    for (int trial = 0; trial < kTrials; ++trial) {
        std::vector<LaneRequest> reqs;
        for (ThreadId t = 0; t < 32; ++t)
            reqs.push_back({t, rng.below(16) * 64, 4, true});
        sum += c.countAccesses(reqs, part);
    }
    const theory::CoalescedAccessDistribution dist(32, 16);
    EXPECT_NEAR(sum / kTrials, dist.mean(), 0.05);
}

TEST(CoalescerDeathTest, NonPowerOfTwoBlockSizePanics)
{
    EXPECT_DEATH(Coalescer(48), "power of two");
}

TEST(CoalescerDeathTest, ZeroSizeRequestPanics)
{
    const Coalescer c(64);
    std::vector<LaneRequest> reqs{{0, 0x0, 0, true}};
    EXPECT_DEATH(c.coalesce(reqs, SubwarpPartition::single(1)),
                 "zero-size");
}

} // namespace
} // namespace rcoal::core
