/**
 * @file
 * Unit tests for the PendingRequestTable (Fig. 11).
 */

#include <gtest/gtest.h>

#include "rcoal/core/pending_request_table.hpp"

namespace rcoal::core {
namespace {

TEST(Prt, AllocateAndRelease)
{
    PendingRequestTable prt(4);
    EXPECT_EQ(prt.capacity(), 4u);
    EXPECT_EQ(prt.occupancy(), 0u);
    EXPECT_EQ(prt.freeEntries(), 4u);

    const auto idx = prt.allocate(3, 0x1000, 8, 4, 2);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(prt.occupancy(), 1u);
    const PrtEntry &entry = prt.entry(*idx);
    EXPECT_TRUE(entry.valid);
    EXPECT_EQ(entry.tid, 3u);
    EXPECT_EQ(entry.baseAddr, 0x1000u);
    EXPECT_EQ(entry.offset, 8u);
    EXPECT_EQ(entry.size, 4u);
    EXPECT_EQ(entry.sid, 2u);
    EXPECT_FALSE(entry.pending);

    prt.release(*idx);
    EXPECT_EQ(prt.occupancy(), 0u);
}

TEST(Prt, FillsToCapacityThenRefuses)
{
    PendingRequestTable prt(3);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(prt.allocate(0, 0, 0, 4, 0).has_value());
    EXPECT_FALSE(prt.allocate(0, 0, 0, 4, 0).has_value());
    EXPECT_EQ(prt.freeEntries(), 0u);
}

TEST(Prt, ReleaseMakesEntryReusable)
{
    PendingRequestTable prt(1);
    const auto a = prt.allocate(1, 0x40, 0, 4, 0);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(prt.allocate(2, 0x80, 0, 4, 0).has_value());
    prt.release(*a);
    const auto b = prt.allocate(2, 0x80, 0, 4, 0);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(prt.entry(*b).tid, 2u);
}

TEST(Prt, MarkPending)
{
    PendingRequestTable prt(2);
    const auto idx = prt.allocate(0, 0, 0, 4, 0);
    prt.markPending(*idx);
    EXPECT_TRUE(prt.entry(*idx).pending);
}

TEST(Prt, EntriesOfSubwarp)
{
    PendingRequestTable prt(8);
    prt.allocate(0, 0, 0, 4, 0);
    const auto b = prt.allocate(1, 0, 0, 4, 1);
    prt.allocate(2, 0, 0, 4, 1);
    const auto of_one = prt.entriesOfSubwarp(1);
    ASSERT_EQ(of_one.size(), 2u);
    EXPECT_EQ(of_one[0], *b);
    EXPECT_TRUE(prt.entriesOfSubwarp(5).empty());
}

TEST(Prt, SidFieldBitsMatchPaperOverhead)
{
    // Section IV-D: 5 bits to represent 32 possible sid values.
    EXPECT_EQ(PendingRequestTable::sidFieldBits(32), 5u);
    EXPECT_EQ(PendingRequestTable::sidFieldBits(64), 6u);
    EXPECT_EQ(PendingRequestTable::sidFieldBits(2), 1u);
    // Per-SM overhead: 32 threads x 2 schedulers x 5 bits = 320 bits.
    EXPECT_EQ(32 * 2 * PendingRequestTable::sidFieldBits(32), 320u);
}

TEST(PrtDeathTest, ReleaseInvalidEntryPanics)
{
    PendingRequestTable prt(2);
    EXPECT_DEATH(prt.release(0), "invalid");
}

TEST(PrtDeathTest, EntryAccessOutOfRangePanics)
{
    PendingRequestTable prt(2);
    EXPECT_DEATH(prt.entry(5), "invalid");
}

TEST(PrtDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(PendingRequestTable(0), "at least one");
}

} // namespace
} // namespace rcoal::core
