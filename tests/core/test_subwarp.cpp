/**
 * @file
 * Unit tests for SubwarpPartition.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "rcoal/core/subwarp.hpp"

namespace rcoal::core {
namespace {

TEST(SubwarpPartition, SingleSubwarp)
{
    const auto p = SubwarpPartition::single(32);
    EXPECT_EQ(p.warpSize(), 32u);
    EXPECT_EQ(p.numSubwarps(), 1u);
    EXPECT_TRUE(p.isInOrder());
    for (ThreadId t = 0; t < 32; ++t)
        EXPECT_EQ(p.subwarpOf(t), 0u);
    EXPECT_EQ(p.threadsOf(0).size(), 32u);
    EXPECT_EQ(p.sizes(), std::vector<unsigned>{32});
}

TEST(SubwarpPartition, FromSizesInOrder)
{
    const auto p = SubwarpPartition::fromSizes({2, 3, 1});
    EXPECT_EQ(p.warpSize(), 6u);
    EXPECT_EQ(p.numSubwarps(), 3u);
    EXPECT_TRUE(p.isInOrder());
    EXPECT_EQ(p.subwarpOf(0), 0u);
    EXPECT_EQ(p.subwarpOf(1), 0u);
    EXPECT_EQ(p.subwarpOf(2), 1u);
    EXPECT_EQ(p.subwarpOf(4), 1u);
    EXPECT_EQ(p.subwarpOf(5), 2u);
    EXPECT_EQ(p.sizes(), (std::vector<unsigned>{2, 3, 1}));
}

TEST(SubwarpPartition, ThreadsOfReturnsSortedTids)
{
    const SubwarpPartition p({1, 0, 1, 0}, 2);
    EXPECT_EQ(p.threadsOf(0), (std::vector<ThreadId>{1, 3}));
    EXPECT_EQ(p.threadsOf(1), (std::vector<ThreadId>{0, 2}));
    EXPECT_FALSE(p.isInOrder());
}

TEST(SubwarpPartition, SizesSumToWarpSize)
{
    const SubwarpPartition p({0, 1, 2, 1, 0, 2, 2, 1}, 3);
    const auto sizes = p.sizes();
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u),
              p.warpSize());
}

TEST(SubwarpPartitionDeathTest, EmptySubwarpRejected)
{
    // Subwarp 1 has no threads.
    EXPECT_DEATH(SubwarpPartition({0, 0, 2, 2}, 3), "empty");
}

TEST(SubwarpPartitionDeathTest, SidOutOfRangeRejected)
{
    EXPECT_DEATH(SubwarpPartition({0, 5}, 2), "out of range");
}

TEST(SubwarpPartitionDeathTest, EmptyWarpRejected)
{
    EXPECT_DEATH(SubwarpPartition({}, 1), "empty partition");
}

TEST(SubwarpPartition, EqualityComparison)
{
    const SubwarpPartition a({0, 1}, 2);
    const SubwarpPartition b({0, 1}, 2);
    const SubwarpPartition c({1, 0}, 2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

} // namespace
} // namespace rcoal::core
