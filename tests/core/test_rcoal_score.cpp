/**
 * @file
 * Unit tests for the RCoal_Score metric (Eq. 7).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rcoal/core/rcoal_score.hpp"

namespace rcoal::core {
namespace {

TEST(SecurityStrength, InverseSquareOfCorrelation)
{
    EXPECT_DOUBLE_EQ(securityStrength(1.0), 1.0);
    EXPECT_DOUBLE_EQ(securityStrength(0.5), 4.0);
    EXPECT_DOUBLE_EQ(securityStrength(0.1), 100.0);
    EXPECT_DOUBLE_EQ(securityStrength(-0.5), 4.0); // sign-insensitive
}

TEST(SecurityStrength, ZeroCorrelationIsInfinitelySecure)
{
    EXPECT_TRUE(std::isinf(securityStrength(0.0)));
}

TEST(RcoalScore, SecurityOrientedWeighting)
{
    // a = 1, b = 1 (Fig. 17a): score = S / time.
    EXPECT_DOUBLE_EQ(rcoalScore(100.0, 2.0, 1.0, 1.0), 50.0);
}

TEST(RcoalScore, PerformanceOrientedWeighting)
{
    // a = 1, b = 20 (Fig. 17b): heavy time penalty.
    const double slow = rcoalScore(100.0, 1.5, 1.0, 20.0);
    const double fast = rcoalScore(50.0, 1.1, 1.0, 20.0);
    // Half the security but much faster wins under b = 20.
    EXPECT_GT(fast, slow);
}

TEST(RcoalScore, SecurityWinsUnderSecurityOrientedWeights)
{
    const double secure = rcoalScore(1000.0, 1.5, 1.0, 1.0);
    const double quick = rcoalScore(50.0, 1.1, 1.0, 1.0);
    EXPECT_GT(secure, quick);
}

TEST(RcoalScore, MonotoneInSecurity)
{
    EXPECT_LT(rcoalScore(10.0, 1.0, 1.0, 1.0),
              rcoalScore(20.0, 1.0, 1.0, 1.0));
}

TEST(RcoalScore, MonotoneDecreasingInTime)
{
    EXPECT_GT(rcoalScore(10.0, 1.0, 1.0, 1.0),
              rcoalScore(10.0, 2.0, 1.0, 1.0));
}

TEST(RcoalScoreDeathTest, NonPositiveTimePanics)
{
    EXPECT_DEATH(rcoalScore(1.0, 0.0, 1.0, 1.0), "positive");
}

} // namespace
} // namespace rcoal::core
