/**
 * @file
 * Property suite: the production coalescer against an independent
 * reference model, over randomized inputs including inactive lanes and
 * block-straddling requests, parameterized across block sizes and
 * policies.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "rcoal/common/logging.hpp"
#include "rcoal/core/coalescer.hpp"
#include "rcoal/core/partitioner.hpp"

namespace rcoal::core {
namespace {

/** Straightforward reference: set of (sid, block) per touched block. */
std::map<std::pair<SubwarpId, Addr>, std::set<ThreadId>>
referenceCoalesce(std::span<const LaneRequest> requests,
                  const SubwarpPartition &partition,
                  std::uint32_t block_bytes)
{
    std::map<std::pair<SubwarpId, Addr>, std::set<ThreadId>> out;
    for (const auto &req : requests) {
        if (!req.active)
            continue;
        const SubwarpId sid = partition.subwarpOf(req.tid);
        Addr block = req.addr / block_bytes * block_bytes;
        const Addr last =
            (req.addr + req.size - 1) / block_bytes * block_bytes;
        for (; block <= last; block += block_bytes)
            out[{sid, block}].insert(req.tid);
    }
    return out;
}

class CoalescerModelSweep
    : public testing::TestWithParam<
          std::tuple<std::uint32_t, unsigned, bool>>
{
  protected:
    std::uint32_t blockBytes() const { return std::get<0>(GetParam()); }
    unsigned numSubwarps() const { return std::get<1>(GetParam()); }
    bool rts() const { return std::get<2>(GetParam()); }
};

TEST_P(CoalescerModelSweep, MatchesReferenceModel)
{
    const Coalescer coalescer(blockBytes());
    SubwarpPartitioner partitioner(
        CoalescingPolicy::rss(numSubwarps(), rts()), 32);
    Rng rng(1000 + blockBytes() + numSubwarps());

    for (int trial = 0; trial < 60; ++trial) {
        std::vector<LaneRequest> lanes(32);
        for (ThreadId t = 0; t < 32; ++t) {
            lanes[t].tid = t;
            lanes[t].addr = rng.below(4096);
            // Mix of sizes, some straddling block boundaries.
            lanes[t].size = 1u << rng.below(5); // 1..16 bytes
            lanes[t].active = rng.chance(0.8);
        }
        const auto partition = partitioner.draw(rng);
        const auto expected =
            referenceCoalesce(lanes, partition, blockBytes());
        const auto actual = coalescer.coalesce(lanes, partition);

        ASSERT_EQ(actual.size(), expected.size());
        for (const auto &access : actual) {
            const auto it =
                expected.find({access.sid, access.blockAddr});
            ASSERT_NE(it, expected.end())
                << "unexpected access sid=" << access.sid << " block=0x"
                << std::hex << access.blockAddr;
            const std::set<ThreadId> threads(access.threads.begin(),
                                             access.threads.end());
            EXPECT_EQ(threads, it->second);
        }
        EXPECT_EQ(coalescer.countAccesses(lanes, partition),
                  actual.size());
    }
}

TEST_P(CoalescerModelSweep, AccessCountBounds)
{
    const Coalescer coalescer(blockBytes());
    SubwarpPartitioner partitioner(
        CoalescingPolicy::rss(numSubwarps(), rts()), 32);
    Rng rng(2000 + blockBytes() * 3 + numSubwarps());

    for (int trial = 0; trial < 60; ++trial) {
        std::vector<LaneRequest> lanes(32);
        unsigned active = 0;
        for (ThreadId t = 0; t < 32; ++t) {
            lanes[t].tid = t;
            lanes[t].addr = rng.below(2048) * 4; // aligned, no straddle
            lanes[t].size = 4;
            lanes[t].active = rng.chance(0.9);
            active += lanes[t].active ? 1 : 0;
        }
        const auto partition = partitioner.draw(rng);
        const unsigned count =
            coalescer.countAccesses(lanes, partition);
        // At most one access per active lane; at least the number of
        // distinct blocks overall (subwarps can only split, not merge).
        std::set<Addr> distinct_blocks;
        for (const auto &lane : lanes) {
            if (lane.active)
                distinct_blocks.insert(coalescer.blockAlign(lane.addr));
        }
        EXPECT_LE(count, active);
        EXPECT_GE(count,
                  active == 0 ? 0u
                              : static_cast<unsigned>(
                                    distinct_blocks.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    BlockSizesAndPolicies, CoalescerModelSweep,
    testing::Combine(testing::Values(32u, 64u, 128u),
                     testing::Values(1u, 4u, 16u), testing::Bool()),
    [](const auto &info) {
        return strprintf("B%u_M%u_%s", std::get<0>(info.param),
                         std::get<1>(info.param),
                         std::get<2>(info.param) ? "RTS" : "InOrder");
    });

} // namespace
} // namespace rcoal::core
