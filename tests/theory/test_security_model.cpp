/**
 * @file
 * Tests of the Section V analytical model, pinned against Table II.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "rcoal/common/rng.hpp"
#include "rcoal/common/stats.hpp"
#include "rcoal/core/partitioner.hpp"
#include "rcoal/theory/security_model.hpp"

namespace rcoal::theory {
namespace {

TEST(SecurityModel, TableTwoFssColumn)
{
    // FSS: rho = 1 for M < 32, rho = 0 at M = 32.
    const auto rows = tableTwo();
    ASSERT_EQ(rows.size(), 6u);
    for (const auto &row : rows) {
        if (row.m < 32) {
            EXPECT_DOUBLE_EQ(row.fss.rho, 1.0) << "M=" << row.m;
            EXPECT_DOUBLE_EQ(row.fss.normalizedSamples, 1.0);
        } else {
            EXPECT_DOUBLE_EQ(row.fss.rho, 0.0);
            EXPECT_TRUE(std::isinf(row.fss.normalizedSamples));
        }
    }
}

TEST(SecurityModel, TableTwoFssRtsColumn)
{
    // Paper Table II, FSS+RTS: rho = 1.00, 0.41, 0.20, 0.09, 0.03, 0;
    // S = 1, 6, 24, 115, 961, inf.
    const auto rows = tableTwo();
    const double expected_rho[] = {1.00, 0.41, 0.20, 0.09, 0.03, 0.0};
    const double expected_s[] = {1, 6, 24, 115, 961, 0};
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_NEAR(rows[i].fssRts.rho, expected_rho[i], 0.005)
            << "M=" << rows[i].m;
        if (rows[i].m == 32) {
            EXPECT_TRUE(std::isinf(rows[i].fssRts.normalizedSamples));
        } else {
            EXPECT_NEAR(rows[i].fssRts.normalizedSamples, expected_s[i],
                        expected_s[i] * 0.05 + 0.5)
                << "M=" << rows[i].m;
        }
    }
}

TEST(SecurityModel, TableTwoRssRtsColumn)
{
    // Paper Table II, RSS+RTS: rho = 1.00, 0.20, 0.15, 0.11, 0.05, 0;
    // S = 1, 25, 42, 78, 349, inf.
    const auto rows = tableTwo();
    const double expected_rho[] = {1.00, 0.20, 0.15, 0.11, 0.05, 0.0};
    const double expected_s[] = {1, 25, 42, 78, 349, 0};
    for (std::size_t i = 0; i < rows.size(); ++i) {
        EXPECT_NEAR(rows[i].rssRts.rho, expected_rho[i], 0.006)
            << "M=" << rows[i].m;
        if (rows[i].m == 32) {
            EXPECT_TRUE(std::isinf(rows[i].rssRts.normalizedSamples));
        } else {
            EXPECT_NEAR(rows[i].rssRts.normalizedSamples, expected_s[i],
                        expected_s[i] * 0.05 + 0.5)
                << "M=" << rows[i].m;
        }
    }
}

TEST(SecurityModel, PaperCrossoverBetweenFssRtsAndRssRts)
{
    // Section V-C: RSS+RTS is stronger (higher S) at M = 2, 4 but
    // FSS+RTS overtakes at M = 8, 16.
    const auto rows = tableTwo();
    for (const auto &row : rows) {
        if (row.m == 2 || row.m == 4) {
            EXPECT_GT(row.rssRts.normalizedSamples,
                      row.fssRts.normalizedSamples)
                << "M=" << row.m;
        }
        if (row.m == 8 || row.m == 16) {
            EXPECT_GT(row.fssRts.normalizedSamples,
                      row.rssRts.normalizedSamples)
                << "M=" << row.m;
        }
    }
}

TEST(SecurityModel, MeanAccessesGrowWithSubwarps)
{
    double prev = 0.0;
    for (unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto result = analyzeFss({32, 16, m});
        EXPECT_GT(result.muU, prev) << "M=" << m;
        prev = result.muU;
    }
    // M = 32: every thread alone -> exactly 32 accesses, variance 0.
    const auto degenerate = analyzeFss({32, 16, 32});
    EXPECT_DOUBLE_EQ(degenerate.muU, 32.0);
    EXPECT_DOUBLE_EQ(degenerate.sigmaU, 0.0);
}

TEST(SecurityModel, RtsDoesNotChangeMarginalMoments)
{
    // Section V-B2: the random permutation affects neither mu(U) nor
    // sigma(U).
    for (unsigned m : {2u, 4u, 8u}) {
        const auto fss = analyzeFss({32, 16, m});
        const auto rts = analyzeFssRts({32, 16, m});
        EXPECT_NEAR(fss.muU, rts.muU, 1e-9);
        EXPECT_NEAR(fss.sigmaU, rts.sigmaU, 1e-9);
    }
}

TEST(SecurityModel, RssRtsMeanIsBelowFss)
{
    // The skewed sizing creates large subwarps with more coalescing
    // opportunities, so RSS generates fewer accesses than FSS
    // (Section IV-B / Fig. 16).
    for (unsigned m : {2u, 4u, 8u, 16u}) {
        const auto fss = analyzeFss({32, 16, m});
        const auto rss = analyzeRssRts({32, 16, m});
        EXPECT_LT(rss.muU, fss.muU) << "M=" << m;
    }
}

TEST(SecurityModel, RhoIsBoundedByOne)
{
    for (unsigned m : {1u, 2u, 3u, 5u, 8u, 13u, 16u, 21u, 32u}) {
        for (const auto &result :
             {analyzeFss({32, 16, m}), analyzeFssRts({32, 16, m}),
              analyzeRssRts({32, 16, m})}) {
            EXPECT_GE(result.rho, -1e-9) << "M=" << m;
            EXPECT_LE(result.rho, 1.0 + 1e-9) << "M=" << m;
        }
    }
}

TEST(SecurityModel, NonDividingSubwarpCountsSupported)
{
    // M that does not divide N uses floor/ceil sizes; the model must
    // still produce sane, monotone-ish results.
    const auto m3 = analyzeFssRts({32, 16, 3});
    const auto m5 = analyzeFssRts({32, 16, 5});
    EXPECT_GT(m3.rho, m5.rho);
    EXPECT_GT(m3.rho, 0.0);
    EXPECT_LT(m3.rho, 1.0);
}

TEST(SecurityModel, SmallConfigurationExactlyComputable)
{
    // N = 4 threads, R = 2 blocks, M = 2 with RTS: small enough to
    // verify mu(U) by brute force over all 2^4 access patterns and all
    // C(4,2)=6 thread splits.
    double mu_brute = 0.0;
    for (unsigned pattern = 0; pattern < 16; ++pattern) {
        // Threads t access block (pattern >> t) & 1.
        double per_pattern = 0.0;
        unsigned splits = 0;
        // Enumerate subwarp-0 memberships of size 2.
        for (unsigned s0 = 0; s0 < 16; ++s0) {
            if (__builtin_popcount(s0) != 2)
                continue;
            ++splits;
            unsigned blocks0 = 0;
            unsigned blocks1 = 0;
            for (unsigned t = 0; t < 4; ++t) {
                const unsigned b = (pattern >> t) & 1;
                if (s0 & (1u << t))
                    blocks0 |= 1u << b;
                else
                    blocks1 |= 1u << b;
            }
            per_pattern += __builtin_popcount(blocks0) +
                           __builtin_popcount(blocks1);
        }
        mu_brute += per_pattern / splits;
    }
    mu_brute /= 16.0;
    const auto result = analyzeFssRts({4, 2, 2});
    EXPECT_NEAR(result.muU, mu_brute, 1e-9);
}

TEST(SecurityModel, ExpectedAccessesGivenFrequenciesEdgeCases)
{
    // All threads on one block, one subwarp: exactly 1 access.
    const std::vector<unsigned> all_on_one{8, 0};
    const std::vector<unsigned> one_subwarp{8};
    EXPECT_DOUBLE_EQ(
        expectedAccessesGivenFrequencies(all_on_one, one_subwarp), 1.0);

    // Every thread on its own block: one access per (block, subwarp
    // that holds that thread) = 8 regardless of the split.
    const std::vector<unsigned> spread(8, 1);
    const std::vector<unsigned> halves{4, 4};
    EXPECT_DOUBLE_EQ(expectedAccessesGivenFrequencies(spread, halves),
                     8.0);
}

TEST(SecurityModel, ExpectedAccessesMatchesMonteCarlo)
{
    // Frequencies {5, 2, 1} over subwarps {3, 3, 2}: compare
    // Definition 3 against simulation.
    const std::vector<unsigned> freqs{5, 2, 1};
    const std::vector<unsigned> caps{3, 3, 2};
    const double exact =
        expectedAccessesGivenFrequencies(freqs, caps);

    Rng rng(55);
    double sum = 0.0;
    constexpr int kTrials = 100000;
    std::vector<unsigned> block_of_thread;
    for (unsigned b = 0; b < freqs.size(); ++b) {
        for (unsigned i = 0; i < freqs[b]; ++i)
            block_of_thread.push_back(b);
    }
    for (int t = 0; t < kTrials; ++t) {
        auto shuffled = block_of_thread;
        rng.shuffle(shuffled);
        unsigned count = 0;
        std::size_t pos = 0;
        for (unsigned cap : caps) {
            unsigned mask = 0;
            for (unsigned i = 0; i < cap; ++i)
                mask |= 1u << shuffled[pos++];
            count += static_cast<unsigned>(__builtin_popcount(mask));
        }
        sum += count;
    }
    EXPECT_NEAR(sum / kTrials, exact, 0.02);
}

TEST(SecurityModel, EmpiricalRhoMatchesTheoryForSmallCase)
{
    // Simulate the FSS+RTS channel for N=8, R=4, M=2 and compare the
    // achieved correlation between two independent RTS draws over the
    // same data (U vs U-hat) with the analytical rho.
    const ModelParams params{8, 4, 2};
    const auto predicted = analyzeFssRts(params);

    Rng rng(77);
    core::SubwarpPartitioner partitioner(
        core::CoalescingPolicy::fss(2, true), 8);
    std::vector<double> u;
    std::vector<double> u_hat;
    constexpr int kTrials = 60000;
    for (int t = 0; t < kTrials; ++t) {
        std::array<unsigned, 8> block{};
        for (auto &b : block)
            b = static_cast<unsigned>(rng.below(4));
        const auto count = [&](const core::SubwarpPartition &part) {
            std::array<unsigned, 2> mask{};
            for (unsigned tid = 0; tid < 8; ++tid)
                mask[part.subwarpOf(tid)] |= 1u << block[tid];
            return __builtin_popcount(mask[0]) +
                   __builtin_popcount(mask[1]);
        };
        u.push_back(count(partitioner.draw(rng)));
        u_hat.push_back(count(partitioner.draw(rng)));
    }
    EXPECT_NEAR(pearsonCorrelation(u, u_hat), predicted.rho, 0.02);
}

TEST(SecurityModel, CustomSubwarpListRespected)
{
    const std::vector<unsigned> ms{2, 8};
    const auto rows = tableTwo(32, 16, ms);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].m, 2u);
    EXPECT_EQ(rows[1].m, 8u);
}

} // namespace
} // namespace rcoal::theory
