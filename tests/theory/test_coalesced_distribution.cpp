/**
 * @file
 * Unit tests for the Definition 1 distribution N_{m,n}.
 */

#include <gtest/gtest.h>

#include "rcoal/common/rng.hpp"
#include "rcoal/theory/coalesced_distribution.hpp"

namespace rcoal::theory {
namespace {

TEST(CoalescedDistribution, PmfSumsToOneExactly)
{
    // Verified internally by an assertion; spot check a few shapes.
    for (auto [m, n] : std::vector<std::pair<unsigned, unsigned>>{
             {1, 1}, {4, 2}, {8, 16}, {32, 16}, {16, 3}}) {
        const CoalescedAccessDistribution dist(m, n);
        numeric::BigRational total;
        for (unsigned i = 0; i <= std::min(m, n); ++i)
            total += dist.pmfExact(i);
        EXPECT_EQ(total, numeric::BigRational(1))
            << "m=" << m << " n=" << n;
    }
}

TEST(CoalescedDistribution, SingleThreadAlwaysOneAccess)
{
    const CoalescedAccessDistribution dist(1, 16);
    EXPECT_DOUBLE_EQ(dist.pmf(1), 1.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 1.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 0.0);
}

TEST(CoalescedDistribution, SingleBlockAlwaysOneAccess)
{
    const CoalescedAccessDistribution dist(32, 1);
    EXPECT_DOUBLE_EQ(dist.pmf(1), 1.0);
    EXPECT_DOUBLE_EQ(dist.mean(), 1.0);
}

TEST(CoalescedDistribution, TwoThreadsTwoBlocks)
{
    // P(1 access) = 1/2 (both threads pick the same block),
    // P(2) = 1/2.
    const CoalescedAccessDistribution dist(2, 2);
    EXPECT_DOUBLE_EQ(dist.pmf(1), 0.5);
    EXPECT_DOUBLE_EQ(dist.pmf(2), 0.5);
    EXPECT_DOUBLE_EQ(dist.mean(), 1.5);
}

TEST(CoalescedDistribution, MeanMatchesClosedForm)
{
    for (auto [m, n] : std::vector<std::pair<unsigned, unsigned>>{
             {2, 16}, {4, 16}, {8, 16}, {16, 16}, {32, 16}, {32, 4}}) {
        const CoalescedAccessDistribution dist(m, n);
        EXPECT_NEAR(dist.mean(),
                    CoalescedAccessDistribution::meanClosedForm(m, n),
                    1e-9)
            << "m=" << m << " n=" << n;
    }
}

TEST(CoalescedDistribution, PaperConfigurationMean)
{
    // N = 32 threads over R = 16 blocks: E = 16*(1-(15/16)^32) ~= 13.97
    // coalesced accesses, the baseline value behind Fig. 7a.
    const CoalescedAccessDistribution dist(32, 16);
    EXPECT_NEAR(dist.mean(), 13.97, 0.01);
    EXPECT_GT(dist.variance(), 0.5);
    EXPECT_LT(dist.variance(), 2.0);
}

TEST(CoalescedDistribution, PmfOutsideSupportIsZero)
{
    const CoalescedAccessDistribution dist(4, 16);
    EXPECT_DOUBLE_EQ(dist.pmf(0), 0.0);
    EXPECT_DOUBLE_EQ(dist.pmf(5), 0.0);
    EXPECT_DOUBLE_EQ(dist.pmf(100), 0.0);
}

TEST(CoalescedDistribution, MonteCarloAgreement)
{
    // Empirical distribution of distinct blocks for 8 threads over 4
    // blocks matches the exact pmf.
    const CoalescedAccessDistribution dist(8, 4);
    Rng rng(33);
    std::array<unsigned, 5> counts{};
    constexpr int kTrials = 100000;
    for (int t = 0; t < kTrials; ++t) {
        unsigned mask = 0;
        for (int i = 0; i < 8; ++i)
            mask |= 1u << rng.below(4);
        ++counts[static_cast<unsigned>(__builtin_popcount(mask))];
    }
    for (unsigned i = 1; i <= 4; ++i) {
        EXPECT_NEAR(static_cast<double>(counts[i]) / kTrials,
                    dist.pmf(i), 0.01)
            << "i=" << i;
    }
}

TEST(CoalescedDistribution, MeanIsMonotoneInThreads)
{
    double prev = 0.0;
    for (unsigned m = 1; m <= 32; ++m) {
        const CoalescedAccessDistribution dist(m, 16);
        EXPECT_GT(dist.mean(), prev);
        prev = dist.mean();
    }
    EXPECT_LT(prev, 16.0);
}

TEST(CoalescedDistributionDeathTest, ZeroArgumentsPanic)
{
    EXPECT_DEATH(CoalescedAccessDistribution(0, 4), "requires");
    EXPECT_DEATH(CoalescedAccessDistribution(4, 0), "requires");
}

} // namespace
} // namespace rcoal::theory
