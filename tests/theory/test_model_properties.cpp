/**
 * @file
 * Parameterized property sweeps of the analytical model across (N, R)
 * configurations beyond the paper's 32/16 point.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rcoal/theory/security_model.hpp"

namespace rcoal::theory {
namespace {

class ModelSweep
    : public testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    unsigned n() const { return std::get<0>(GetParam()); }
    unsigned r() const { return std::get<1>(GetParam()); }
};

TEST_P(ModelSweep, FssRhoIsOneBelowDegeneracy)
{
    for (unsigned m = 1; m < n(); m *= 2) {
        const auto result = analyzeFss({n(), r(), m});
        EXPECT_DOUBLE_EQ(result.rho, 1.0) << "M=" << m;
    }
    EXPECT_DOUBLE_EQ(analyzeFss({n(), r(), n()}).rho, 0.0);
}

TEST_P(ModelSweep, FssRtsRhoDecreasesWithSubwarps)
{
    double prev = 1.1;
    for (unsigned m = 1; m <= n(); m *= 2) {
        const auto result = analyzeFssRts({n(), r(), m});
        EXPECT_LT(result.rho, prev + 1e-9) << "M=" << m;
        EXPECT_GE(result.rho, -1e-9);
        prev = result.rho;
    }
}

TEST_P(ModelSweep, RssRtsRhoBoundedAndDegenerates)
{
    // RSS+RTS is NOT strictly monotone in M (the paper observes the
    // same fluctuation empirically at M = 8/16, Section VI-A); the
    // guaranteed structure is: rho = 1 at M = 1, rho well below 1 for
    // 1 < M < N, and rho = 0 at M = N.
    EXPECT_NEAR(analyzeRssRts({n(), r(), 1}).rho, 1.0, 1e-9);
    for (unsigned m = 2; m < n(); m *= 2) {
        const auto result = analyzeRssRts({n(), r(), m});
        EXPECT_GE(result.rho, -1e-9) << "M=" << m;
        EXPECT_LT(result.rho, 0.5) << "M=" << m;
    }
    EXPECT_NEAR(analyzeRssRts({n(), r(), n()}).rho, 0.0, 1e-9);
}

TEST_P(ModelSweep, MeanAccessesBoundedByMinOfLanesAndBlocksTimesM)
{
    for (unsigned m = 1; m <= n(); m *= 2) {
        for (const auto &result :
             {analyzeFss({n(), r(), m}), analyzeRssRts({n(), r(), m})}) {
            EXPECT_GE(result.muU, 1.0);
            EXPECT_LE(result.muU, static_cast<double>(n()) + 1e-9);
        }
    }
}

TEST_P(ModelSweep, NormalizedSamplesAtLeastOne)
{
    for (unsigned m = 1; m <= n(); m *= 2) {
        for (const auto &result :
             {analyzeFss({n(), r(), m}), analyzeFssRts({n(), r(), m}),
              analyzeRssRts({n(), r(), m})}) {
            EXPECT_GE(result.normalizedSamples, 1.0 - 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, ModelSweep,
    testing::Values(std::make_tuple(8u, 4u), std::make_tuple(16u, 8u),
                    std::make_tuple(16u, 16u), std::make_tuple(32u, 8u),
                    std::make_tuple(32u, 16u)),
    [](const auto &info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "_R" +
               std::to_string(std::get<1>(info.param));
    });

TEST(ModelProperties, MoreBlocksMeansWeakerDefenseAtFixedM)
{
    // With more memory blocks per table, access counts vary more and
    // the RTS randomization hides less: rho grows with R.
    const double rho_r4 = analyzeFssRts({32, 4, 4}).rho;
    const double rho_r16 = analyzeFssRts({32, 16, 4}).rho;
    EXPECT_GT(rho_r4, 0.0);
    EXPECT_LT(rho_r4, rho_r16 + 0.25); // sanity: same order of magnitude
}

TEST(ModelProperties, WiderWarpsAreEasierToDefend)
{
    // At fixed M and R, more threads per subwarp leave more room for
    // permutation entropy: rho at N=32 is below rho at N=16 ... verify
    // the direction empirically via the model itself.
    const double rho_n16 = analyzeFssRts({16, 16, 4}).rho;
    const double rho_n32 = analyzeFssRts({32, 16, 4}).rho;
    EXPECT_NE(rho_n16, rho_n32);
}

} // namespace
} // namespace rcoal::theory
