/**
 * @file
 * Unit tests for the span layer's storage and lifecycle primitives:
 * the allocation-free SpanSlab ring, the SpanCollector's id/sampling/
 * stamp-routing logic, and their StateArena round-trips.
 */

#include <gtest/gtest.h>

#include "rcoal/common/state_arena.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/spans/span_slab.hpp"

namespace rcoal::spans {
namespace {

SpanRecord
record(std::uint32_t span_id, SpanStage stage, Cycle begin, Cycle end)
{
    SpanRecord r;
    r.begin = begin;
    r.end = end;
    r.spanId = span_id;
    r.stage = static_cast<std::uint8_t>(stage);
    return r;
}

bool
sameRecord(const SpanRecord &a, const SpanRecord &b)
{
    return a.begin == b.begin && a.end == b.end && a.spanId == b.spanId &&
           a.detail == b.detail && a.component == b.component &&
           a.stage == b.stage && a.lastRound == b.lastRound;
}

TEST(SpanSlab, EveryStageHasAName)
{
    for (std::size_t s = 0; s < kNumSpanStages; ++s) {
        const char *name = spanStageName(static_cast<SpanStage>(s));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

TEST(SpanSlab, RecordsInOrderBelowCapacity)
{
    SpanSlab slab(8);
    for (Cycle c = 0; c < 5; ++c)
        slab.append(record(1, SpanStage::Queue, c, c + 1));
    EXPECT_EQ(slab.size(), 5u);
    EXPECT_EQ(slab.totalAppended(), 5u);
    EXPECT_EQ(slab.dropped(), 0u);
    const auto records = slab.snapshot();
    ASSERT_EQ(records.size(), 5u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].begin, i);
}

TEST(SpanSlab, OverwritesOldestWhenFull)
{
    SpanSlab slab(4);
    for (Cycle c = 0; c < 10; ++c)
        slab.append(record(1, SpanStage::Coalesce, c, c + 1));
    EXPECT_EQ(slab.size(), 4u);
    EXPECT_EQ(slab.totalAppended(), 10u);
    EXPECT_EQ(slab.dropped(), 6u);
    const auto records = slab.snapshot();
    ASSERT_EQ(records.size(), 4u);
    // The most recent window survives, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(records[i].begin, 6 + i);
}

TEST(SpanSlab, ClearedSlabSerializesLikeFresh)
{
    SpanSlab used(4);
    for (Cycle c = 0; c < 9; ++c)
        used.append(record(2, SpanStage::DramService, c, c + 3));
    used.clear();
    EXPECT_EQ(used.size(), 0u);
    EXPECT_EQ(used.totalAppended(), 0u);
    EXPECT_EQ(used.dropped(), 0u);

    SpanSlab fresh(4);
    common::StateArena used_arena, fresh_arena;
    {
        common::ArenaWriter w(used_arena);
        w.beginRegion(1);
        used.saveState(w);
        w.endRegion();
    }
    {
        common::ArenaWriter w(fresh_arena);
        w.beginRegion(1);
        fresh.saveState(w);
        w.endRegion();
    }
    EXPECT_TRUE(used_arena.byteEqual(fresh_arena));
}

TEST(SpanSlab, SaveRestoreRoundTrips)
{
    SpanSlab slab(4);
    for (Cycle c = 0; c < 7; ++c)
        slab.append(record(3, SpanStage::Crossbar, c, c + 2));

    common::StateArena arena;
    {
        common::ArenaWriter w(arena);
        w.beginRegion(1);
        slab.saveState(w);
        w.endRegion();
    }
    SpanSlab restored(4);
    {
        common::ArenaReader r(arena);
        r.beginRegion(1);
        restored.restoreState(r);
        r.endRegion();
        EXPECT_TRUE(r.atEnd());
    }
    EXPECT_EQ(restored.size(), slab.size());
    EXPECT_EQ(restored.totalAppended(), slab.totalAppended());
    EXPECT_EQ(restored.dropped(), slab.dropped());
    const auto a = slab.snapshot();
    const auto b = restored.snapshot();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(sameRecord(a[i], b[i])) << "record " << i;
}

TEST(SpanCollector, IdsStartAtOneAndZeroMeansUntraced)
{
    SpanCollector collector;
    EXPECT_FALSE(collector.sampled(0));
    EXPECT_EQ(collector.openRequest(), 1u);
    EXPECT_EQ(collector.openRequest(), 2u);
    EXPECT_EQ(collector.spansOpened(), 2u);
    EXPECT_EQ(collector.liveSpans(), 2u);
}

TEST(SpanCollector, StampsAccumulateAndFinishDrains)
{
    SpanCollector collector;
    const std::uint32_t id = collector.openRequest();
    collector.stampRequest(id, SpanStage::Queue, 10, 50);
    collector.stampRequest(id, SpanStage::KernelExec, 50, 250, 4, 1,
                           /*last_round_cycles=*/60);
    const StageTotals totals = collector.finishRequest(id);
    EXPECT_EQ(totals.cycles[static_cast<std::size_t>(SpanStage::Queue)],
              40u);
    EXPECT_EQ(
        totals.cycles[static_cast<std::size_t>(SpanStage::KernelExec)],
        200u);
    EXPECT_EQ(totals.lastRoundCycles[static_cast<std::size_t>(
                  SpanStage::KernelExec)],
              60u);
    EXPECT_EQ(collector.liveSpans(), 0u);
    EXPECT_EQ(collector.spansFinished(), 1u);
    // Double-finish returns zeroed totals, not stale state.
    const StageTotals again = collector.finishRequest(id);
    EXPECT_EQ(again.cycles[static_cast<std::size_t>(SpanStage::Queue)],
              0u);
}

TEST(SpanCollector, WarpStampsResolveThroughLaunchRegistration)
{
    SpanCollector collector;
    const std::uint32_t id = collector.openRequest();
    collector.registerLaunch(/*ns=*/3, /*slot=*/7, {0, id, 0});

    // Warp 1 belongs to the span; warps 0/2 and unknown launches are
    // silently ignored.
    collector.stampWarp(3, 7, 1, SpanStage::Coalesce, 0, 100, 104, 4,
                        /*last_round=*/true);
    collector.stampWarp(3, 7, 0, SpanStage::Coalesce, 0, 100, 104, 4,
                        true);
    collector.stampWarp(3, 7, 9, SpanStage::Coalesce, 0, 100, 104, 4,
                        true);
    collector.stampWarp(9, 9, 1, SpanStage::Coalesce, 0, 100, 104, 4,
                        true);
    EXPECT_EQ(collector.slab().totalAppended(), 1u);

    collector.releaseLaunch(3, 7);
    collector.stampWarp(3, 7, 1, SpanStage::Coalesce, 0, 200, 204, 4,
                        true);
    EXPECT_EQ(collector.slab().totalAppended(), 1u);

    const StageTotals totals = collector.finishRequest(id);
    const auto s = static_cast<std::size_t>(SpanStage::Coalesce);
    EXPECT_EQ(totals.cycles[s], 4u);
    EXPECT_EQ(totals.lastRoundCycles[s], 4u);
}

TEST(SpanCollector, UnsampledSpansConsumeIdsButNoSlabSpace)
{
    SpanCollector::Config cfg;
    cfg.sampleRate = 4;
    SpanCollector collector(cfg);
    for (std::uint32_t i = 1; i <= 8; ++i) {
        const std::uint32_t id = collector.openRequest();
        EXPECT_EQ(id, i); // Every request consumes an id.
        EXPECT_EQ(collector.sampled(id), id % 4 == 0);
        collector.stampRequest(id, SpanStage::Queue, 0, 10);
    }
    EXPECT_EQ(collector.spansOpened(), 8u);
    EXPECT_EQ(collector.liveSpans(), 2u); // Ids 4 and 8.
    EXPECT_EQ(collector.slab().totalAppended(), 2u);
    for (const SpanRecord &r : collector.slab().snapshot())
        EXPECT_EQ(r.spanId % 4, 0u);
}

TEST(SpanCollector, SampledSlabIsTheSampledSubsetOfTheFullSlab)
{
    // The satellite contract behind --span-sample-rate: because every
    // request consumes an id whether or not it is retained, a sampled
    // run's slab is exactly the full run's slab filtered to sampled
    // ids — byte for byte, same order.
    const auto drive = [](SpanCollector &collector) {
        for (int i = 0; i < 12; ++i) {
            const std::uint32_t id = collector.openRequest();
            collector.stampRequest(id, SpanStage::Queue,
                                   Cycle(10 * i), Cycle(10 * i + 5),
                                   /*detail=*/id);
            collector.registerLaunch(0, id, {id});
            collector.stampWarp(0, id, 0, SpanStage::Coalesce, 2,
                                Cycle(10 * i + 5), Cycle(10 * i + 9),
                                4, true);
            collector.releaseLaunch(0, id);
            collector.finishRequest(id);
        }
    };
    SpanCollector full;
    drive(full);
    SpanCollector::Config cfg;
    cfg.sampleRate = 3;
    SpanCollector sampled(cfg);
    drive(sampled);

    std::vector<SpanRecord> expected;
    for (const SpanRecord &r : full.slab().snapshot())
        if (r.spanId % 3 == 0)
            expected.push_back(r);
    const auto actual = sampled.slab().snapshot();
    ASSERT_EQ(actual.size(), expected.size());
    ASSERT_FALSE(actual.empty());
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_TRUE(sameRecord(actual[i], expected[i])) << "record " << i;
}

TEST(SpanCollector, SaveRestoreRoundTripsLiveSpans)
{
    SpanCollector collector;
    const std::uint32_t finished_id = collector.openRequest();
    collector.stampRequest(finished_id, SpanStage::Queue, 0, 7);
    collector.finishRequest(finished_id);
    const std::uint32_t live_id = collector.openRequest();
    collector.stampRequest(live_id, SpanStage::Queue, 7, 30, 1, 2);

    common::StateArena arena;
    {
        common::ArenaWriter w(arena);
        w.beginRegion(1);
        collector.saveState(w);
        w.endRegion();
    }
    SpanCollector restored;
    {
        common::ArenaReader r(arena);
        r.beginRegion(1);
        restored.restoreState(r);
        r.endRegion();
    }
    EXPECT_EQ(restored.spansOpened(), 2u);
    EXPECT_EQ(restored.spansFinished(), 1u);
    EXPECT_EQ(restored.liveSpans(), 1u);
    // The restored collector continues the id sequence...
    EXPECT_EQ(restored.openRequest(), 3u);
    // ...and the in-flight span's totals survived the round-trip.
    const StageTotals totals = restored.finishRequest(live_id);
    EXPECT_EQ(totals.cycles[static_cast<std::size_t>(SpanStage::Queue)],
              23u);

    // Byte determinism: re-serializing an untouched restore matches.
    SpanCollector again;
    {
        common::ArenaReader r(arena);
        r.beginRegion(1);
        again.restoreState(r);
        r.endRegion();
    }
    common::StateArena second;
    {
        common::ArenaWriter w(second);
        w.beginRegion(1);
        again.saveState(w);
        w.endRegion();
    }
    EXPECT_TRUE(second.byteEqual(arena));
}

TEST(SpanCollector, ClearRestartsIdsAndMatchesFresh)
{
    SpanCollector used;
    for (int i = 0; i < 5; ++i) {
        const std::uint32_t id = used.openRequest();
        used.stampRequest(id, SpanStage::Queue, 0, 9);
    }
    used.clear();
    EXPECT_EQ(used.openRequest(), 1u);
    used.clear();

    SpanCollector fresh;
    common::StateArena used_arena, fresh_arena;
    {
        common::ArenaWriter w(used_arena);
        w.beginRegion(1);
        used.saveState(w);
        w.endRegion();
    }
    {
        common::ArenaWriter w(fresh_arena);
        w.beginRegion(1);
        fresh.saveState(w);
        w.endRegion();
    }
    EXPECT_TRUE(used_arena.byteEqual(fresh_arena));
}

} // namespace
} // namespace rcoal::spans
