/**
 * @file
 * Serve-level span determinism suite: the retained span records of a
 * serving run are byte-identical across cycle-skipping on/off, across
 * thread-pool worker counts, across fork-vs-replay warm boot, and —
 * filtered to the sampled subset — across span sample rates.
 *
 * Every test name contains "Span" so the whole suite also runs under
 * the ThreadSanitizer filter in CI.
 */

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/common/thread_pool.hpp"
#include "rcoal/serve/server.hpp"
#include "rcoal/spans/collector.hpp"

namespace rcoal::spans {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
smallGpu(bool cycle_skipping = true)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.seed = 42;
    cfg.cycleSkipping = cycle_skipping;
    return cfg;
}

serve::ServeConfig
smallServe(unsigned warm_boot = 0)
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.batchTimeoutCycles = 2000;
    cfg.smsPerKernel = 2;
    cfg.warmBootKernels = warm_boot;
    return cfg;
}

serve::WorkloadSpec
smallSpec()
{
    serve::WorkloadSpec spec;
    spec.probeSamples = 6;
    spec.probeLines = 32;
    spec.probeSeed = 7;
    spec.probeThinkCycles = 100;
    // Background traffic so batches mix tenants and several spans are
    // in flight at once.
    spec.backgroundMeanGapCycles = 15000.0;
    spec.backgroundLineChoices = {32};
    spec.backgroundSeed = 99;
    return spec;
}

/** Run one serving scenario and return the retained span records. */
std::vector<SpanRecord>
runAndSnapshotSpans(const sim::GpuConfig &gpu,
                    const serve::ServeConfig &cfg,
                    std::uint32_t sample_rate = 1,
                    const sim::MachineSnapshot *warm_boot = nullptr)
{
    SpanCollector::Config span_cfg;
    span_cfg.sampleRate = sample_rate;
    SpanCollector collector(span_cfg);
    serve::ServeTelemetry hooks;
    hooks.spans = &collector;
    const serve::EncryptionServer server(gpu, cfg, kKey);
    (void)server.run(smallSpec(), nullptr, &hooks, warm_boot);
    EXPECT_GT(collector.slab().totalAppended(), 0u);
    EXPECT_EQ(collector.liveSpans(), 0u)
        << "spans leaked past the serving loop";
    return collector.slab().snapshot();
}

void
expectSpanRecordsIdentical(const std::vector<SpanRecord> &a,
                           const std::vector<SpanRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(0, std::memcmp(&a[i], &b[i], sizeof(SpanRecord)))
            << "span record " << i << " diverged (span " << a[i].spanId
            << " stage " << int(a[i].stage) << " vs span " << b[i].spanId
            << " stage " << int(b[i].stage) << ")";
    }
}

TEST(SpanDeterminism, SpanRecordsIdenticalAcrossCycleSkipping)
{
    const auto with_skip =
        runAndSnapshotSpans(smallGpu(true), smallServe());
    const auto without_skip =
        runAndSnapshotSpans(smallGpu(false), smallServe());
    expectSpanRecordsIdentical(with_skip, without_skip);
}

TEST(SpanDeterminism, SpanRecordsIdenticalAcrossWorkerThreads)
{
    // A serving run is single-threaded by construction; the threads
    // axis is scenarios spreading over a pool. Run the same scenario
    // serially and from 8 pool workers concurrently — every copy must
    // produce the same records.
    const auto serial = runAndSnapshotSpans(smallGpu(), smallServe());
    ThreadPool pool(8);
    const auto pooled = pool.parallelMap(8, [&](std::size_t) {
        return runAndSnapshotSpans(smallGpu(), smallServe());
    });
    for (const auto &records : pooled)
        expectSpanRecordsIdentical(serial, records);
}

TEST(SpanDeterminism, SpanRecordsIdenticalForkVsReplay)
{
    const sim::GpuConfig gpu = smallGpu();
    const serve::ServeConfig cfg = smallServe(/*warm_boot=*/2);
    const serve::EncryptionServer server(gpu, cfg, kKey);
    const sim::MachineSnapshot warm = server.warmBootSnapshot();

    const auto forked = runAndSnapshotSpans(gpu, cfg, 1, &warm);
    const auto replayed = runAndSnapshotSpans(gpu, cfg, 1, nullptr);
    expectSpanRecordsIdentical(forked, replayed);
}

TEST(SpanDeterminism, SpanSampledRunMatchesSampledSubsetOfFullRun)
{
    const auto full = runAndSnapshotSpans(smallGpu(), smallServe(), 1);
    const auto sampled =
        runAndSnapshotSpans(smallGpu(), smallServe(), 4);

    std::vector<SpanRecord> expected;
    for (const SpanRecord &r : full)
        if (r.spanId % 4 == 0)
            expected.push_back(r);
    ASSERT_FALSE(expected.empty())
        << "fixture too small: no sampled span ids";
    expectSpanRecordsIdentical(sampled, expected);
}

TEST(SpanDeterminism, SpanTotalsMatchRecordDurations)
{
    // Cross-check the two bookkeeping paths: per-request StageTotals
    // accumulated at stamp time vs the slab's raw records.
    SpanCollector collector;
    serve::ServeTelemetry hooks;
    hooks.spans = &collector;
    const serve::EncryptionServer server(smallGpu(), smallServe(), kKey);
    const serve::ServeReport report =
        server.run(smallSpec(), nullptr, &hooks);

    std::array<std::uint64_t, kNumSpanStages> from_records{};
    for (const SpanRecord &r : collector.slab().snapshot())
        from_records[r.stage] += r.end - r.begin;
    std::array<std::uint64_t, kNumSpanStages> from_totals{};
    for (const serve::CompletedRequest &done : report.completed) {
        EXPECT_TRUE(done.spanSampled);
        EXPECT_NE(done.spanId, 0u);
        for (std::size_t s = 0; s < kNumSpanStages; ++s)
            from_totals[s] += done.stageTotals.cycles[s];
    }
    for (std::size_t s = 0; s < kNumSpanStages; ++s)
        EXPECT_EQ(from_records[s], from_totals[s])
            << "stage " << spanStageName(static_cast<SpanStage>(s));
    // Every request spent time in its kernel. (Queue can legitimately
    // total zero: FCFS pops on arrival whenever a gang is free.)
    const auto st_kexec =
        static_cast<std::size_t>(SpanStage::KernelExec);
    EXPECT_GT(from_totals[st_kexec], 0u);
}

} // namespace
} // namespace rcoal::spans
