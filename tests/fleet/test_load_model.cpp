/**
 * @file
 * TenantLoadModel: poll-interval invariance (the scheduled-arrival
 * stamping contract), rate skew, burst/diurnal shaping and id spaces.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "rcoal/fleet/load_model.hpp"

namespace rcoal::fleet {
namespace {

TenantLoadConfig
smallTenants()
{
    TenantLoadConfig cfg;
    cfg.tenants = 3;
    cfg.baseMeanGapCycles = 500.0;
    cfg.zipfExponent = 1.0;
    cfg.lineChoices = {32, 64};
    cfg.seed = 2718;
    return cfg;
}

std::vector<serve::Request>
drainWithPoll(const TenantLoadConfig &cfg, Cycle horizon, Cycle interval)
{
    TenantLoadModel model(cfg);
    std::vector<serve::Request> out;
    for (Cycle now = 0; now <= horizon; now += interval)
        model.poll(now, out);
    model.poll(horizon, out); // Final poll: intervals need not divide.
    return out;
}

TEST(FleetLoadModelTest, ArrivalStampsArePollIntervalInvariant)
{
    const TenantLoadConfig cfg = smallTenants();
    const Cycle horizon = 60'000;
    const auto fine = drainWithPoll(cfg, horizon, 1);
    const auto coarse = drainWithPoll(cfg, horizon, 977);

    ASSERT_FALSE(fine.empty());
    ASSERT_EQ(fine.size(), coarse.size());
    for (std::size_t i = 0; i < fine.size(); ++i) {
        EXPECT_EQ(fine[i].id, coarse[i].id) << "request " << i;
        EXPECT_EQ(fine[i].arrival, coarse[i].arrival)
            << "request " << i
            << ": arrival must be the scheduled cycle, not the poll "
               "cycle";
        EXPECT_EQ(fine[i].tenant, coarse[i].tenant) << "request " << i;
        EXPECT_EQ(fine[i].plaintext, coarse[i].plaintext)
            << "request " << i;
    }
}

TEST(FleetLoadModelTest, NextEventCycleDoesNotPerturbArrivals)
{
    const TenantLoadConfig cfg = smallTenants();
    TenantLoadModel probed(cfg);
    // Consulting the bound repeatedly must not change what poll emits.
    for (int i = 0; i < 5; ++i)
        (void)probed.nextEventCycle();
    std::vector<serve::Request> with_probe;
    probed.poll(20'000, with_probe);

    TenantLoadModel plain(cfg);
    std::vector<serve::Request> without_probe;
    plain.poll(20'000, without_probe);

    ASSERT_EQ(with_probe.size(), without_probe.size());
    for (std::size_t i = 0; i < with_probe.size(); ++i) {
        EXPECT_EQ(with_probe[i].id, without_probe[i].id);
        EXPECT_EQ(with_probe[i].arrival, without_probe[i].arrival);
    }
    const Cycle bound = plain.nextEventCycle();
    EXPECT_GT(bound, Cycle{20'000});
}

TEST(FleetLoadModelTest, ZipfSkewsPerTenantRates)
{
    TenantLoadConfig cfg = smallTenants();
    cfg.zipfExponent = 1.0;
    const TenantLoadModel model(cfg);
    EXPECT_DOUBLE_EQ(model.meanGapOfRank(0), 500.0);
    EXPECT_DOUBLE_EQ(model.meanGapOfRank(1), 1000.0);
    EXPECT_DOUBLE_EQ(model.meanGapOfRank(2), 1500.0);

    // The heaviest tenant should dominate emitted traffic.
    std::map<std::uint64_t, std::size_t> per_tenant;
    const auto requests = drainWithPoll(cfg, 200'000, 1);
    for (const auto &r : requests)
        ++per_tenant[r.tenant];
    EXPECT_GT(per_tenant[1], per_tenant[2]);
    EXPECT_GT(per_tenant[2], per_tenant[3]);
}

TEST(FleetLoadModelTest, IdSpacesNeverCollideAcrossTenants)
{
    TenantLoadConfig cfg = smallTenants();
    cfg.firstId = 1000;
    cfg.idStride = 1'000'000;
    const auto requests = drainWithPoll(cfg, 100'000, 1);
    ASSERT_FALSE(requests.empty());
    for (const auto &r : requests) {
        ASSERT_GE(r.tenant, 1u);
        const std::uint64_t base =
            cfg.firstId + (r.tenant - 1) * cfg.idStride;
        EXPECT_GE(r.id, base);
        EXPECT_LT(r.id, base + cfg.idStride);
        EXPECT_FALSE(r.isProbe);
        EXPECT_EQ(r.clientId, -1);
    }
}

TEST(FleetLoadModelTest, BurstsIncreaseArrivalCount)
{
    TenantLoadConfig calm = smallTenants();
    calm.tenants = 1;
    TenantLoadConfig bursty = calm;
    bursty.burstProbability = 0.5;
    bursty.burstLength = 8;
    bursty.burstRateFactor = 8.0;

    const auto calm_reqs = drainWithPoll(calm, 300'000, 1);
    const auto bursty_reqs = drainWithPoll(bursty, 300'000, 1);
    EXPECT_GT(bursty_reqs.size(), calm_reqs.size() * 2);
}

TEST(FleetLoadModelTest, DiurnalWaveIsDeterministic)
{
    TenantLoadConfig cfg = smallTenants();
    cfg.diurnalAmplitude = 0.6;
    cfg.diurnalPeriodCycles = 50'000;
    const auto a = drainWithPoll(cfg, 150'000, 1);
    const auto b = drainWithPoll(cfg, 150'000, 613);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].arrival, b[i].arrival) << "request " << i;
}

TEST(FleetLoadModelTest, ZeroTenantsOffersNoLoad)
{
    TenantLoadConfig cfg;
    cfg.tenants = 0;
    cfg.validate();
    TenantLoadModel model(cfg);
    std::vector<serve::Request> out;
    model.poll(1'000'000, out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(model.nextEventCycle(), kInvalidCycle);
}

TEST(FleetLoadModelDeathTest, RejectsBadAmplitude)
{
    TenantLoadConfig cfg = smallTenants();
    cfg.diurnalAmplitude = 1.0;
    EXPECT_DEATH(cfg.validate(), "diurnalAmplitude");
}

TEST(FleetLoadModelDeathTest, RejectsNonPositiveGap)
{
    TenantLoadConfig cfg = smallTenants();
    cfg.baseMeanGapCycles = 0.0;
    EXPECT_DEATH(cfg.validate(), "baseMeanGapCycles");
}

} // namespace
} // namespace rcoal::fleet
