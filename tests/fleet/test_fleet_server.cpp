/**
 * @file
 * FleetServer end-to-end: serving invariants across replicas, probe
 * pinning, telemetry/auditor wiring and autoscaler integration.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "rcoal/fleet/fleet.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/registry.hpp"
#include "rcoal/telemetry/sampler.hpp"

namespace rcoal::fleet {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
smallGpu(std::uint64_t seed = 42)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.seed = seed;
    return cfg;
}

serve::ServeConfig
smallServe()
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.smsPerKernel = 2; // Two gangs per 4-SM replica.
    return cfg;
}

FleetConfig
smallFleet(RoutingPolicy routing = RoutingPolicy::RoundRobin)
{
    FleetConfig cfg;
    cfg.numReplicas = 2;
    cfg.routing = routing;
    cfg.maxSimCycles = 20'000'000;
    return cfg;
}

FleetWorkloadSpec
lightWorkload(unsigned probes = 4)
{
    FleetWorkloadSpec spec;
    spec.probeSamples = probes;
    spec.probeLines = 32;
    spec.probeSeed = 7;
    spec.probeThinkCycles = 100;
    spec.tenants.tenants = 2;
    spec.tenants.baseMeanGapCycles = 4000.0;
    spec.tenants.lineChoices = {32};
    spec.tenants.seed = 99;
    return spec;
}

TEST(FleetServerTest, ServesProbesAndTenantsAcrossReplicas)
{
    const FleetServer fleet(smallGpu(), smallServe(), smallFleet(),
                            kKey);
    const FleetReport report = fleet.run(lightWorkload(5));

    // The run ends when the probe stream is satisfied.
    std::size_t probe_count = 0;
    std::set<std::uint64_t> ids;
    ASSERT_EQ(report.completed.size(), report.completedReplica.size());
    for (std::size_t i = 0; i < report.completed.size(); ++i) {
        const auto &done = report.completed[i];
        EXPECT_TRUE(ids.insert(done.id).second)
            << "duplicate completion id " << done.id;
        EXPECT_LT(report.completedReplica[i], 2u);
        EXPECT_GE(done.completed, done.launched);
        EXPECT_GE(done.launched, done.arrival);
        if (done.isProbe)
            ++probe_count;
    }
    EXPECT_EQ(probe_count, 5u);
    EXPECT_GT(report.totalCycles, Cycle{0});
    EXPECT_GT(report.throughputReqPerSec, 0.0);
    EXPECT_DOUBLE_EQ(report.meanActiveReplicas, 2.0);

    // Per-replica accounting must add up to the fleet aggregate.
    ASSERT_EQ(report.replicas.size(), 2u);
    std::size_t replica_completed = 0;
    std::uint64_t replica_admitted = 0;
    for (const ReplicaReport &r : report.replicas) {
        replica_completed += r.completed;
        replica_admitted += r.admitted;
        EXPECT_EQ(r.finalState, "active");
    }
    EXPECT_EQ(replica_completed, report.completed.size());
    EXPECT_EQ(replica_admitted, report.admitted);
    EXPECT_EQ(report.allLatency.count, report.completed.size());
    EXPECT_EQ(report.probeLatency.count, probe_count);
    EXPECT_FALSE(report.describe().empty());
}

TEST(FleetServerTest, RoundRobinSpreadsWorkOverBothReplicas)
{
    const FleetServer fleet(smallGpu(), smallServe(), smallFleet(),
                            kKey);
    const FleetReport report = fleet.run(lightWorkload(6));
    ASSERT_EQ(report.replicas.size(), 2u);
    EXPECT_GT(report.replicas[0].completed, 0u);
    EXPECT_GT(report.replicas[1].completed, 0u);
}

TEST(FleetServerTest, PinnedProbesAllLandOnThePinnedReplica)
{
    const FleetServer fleet(smallGpu(), smallServe(), smallFleet(),
                            kKey);
    FleetWorkloadSpec spec = lightWorkload(5);
    spec.pinProbesToReplica = 1;
    const FleetReport report = fleet.run(spec);

    std::size_t probe_count = 0;
    for (std::size_t i = 0; i < report.completed.size(); ++i) {
        if (!report.completed[i].isProbe)
            continue;
        ++probe_count;
        EXPECT_EQ(report.completedReplica[i], 1u)
            << "probe " << report.completed[i].id
            << " escaped the pinned replica";
    }
    EXPECT_EQ(probe_count, 5u);
}

TEST(FleetServerTest, TelemetryAndFleetAuditorSeeTheRun)
{
    telemetry::MetricRegistry registry;
    telemetry::TelemetrySampler sampler(registry, 2000);
    telemetry::FleetLeakageAuditor auditor(registry, {}, 2);
    FleetTelemetry telemetry{&sampler, &auditor};

    const FleetServer fleet(smallGpu(), smallServe(), smallFleet(),
                            kKey);
    const FleetReport report = fleet.run(lightWorkload(6), &telemetry);

    // Every completed probe reached the auditor: each per-replica
    // series plus the aggregate, which saw all of them.
    EXPECT_EQ(auditor.fleetSamples(), 6u);
    EXPECT_EQ(auditor.samples(0) + auditor.samples(1), 6u);

    EXPECT_GT(sampler.samplesTaken(), 0u);
    EXPECT_DOUBLE_EQ(
        registry.readValue("rcoal_fleet_completed_total"),
        static_cast<double>(report.completed.size()));
    EXPECT_DOUBLE_EQ(registry.readValue("rcoal_fleet_admitted_total"),
                     static_cast<double>(report.admitted));
    EXPECT_DOUBLE_EQ(
        registry.readValue("rcoal_fleet_probe_completed_total"), 6.0);
    EXPECT_DOUBLE_EQ(registry.readValue("rcoal_fleet_active_replicas"),
                     2.0);
}

TEST(FleetServerTest, AutoscalerGrowsAColdFleetUnderLoad)
{
    serve::ServeConfig serve = smallServe();
    serve.queueCapacity = 64;

    FleetConfig cfg = smallFleet();
    cfg.numReplicas = 3;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.evalIntervalCycles = 10'000;
    cfg.autoscaler.queueDepthSlo = 2.0;
    cfg.autoscaler.scaleDownQueueDepth = 0.25;
    cfg.autoscaler.cooldownCycles = 0;
    cfg.autoscaler.minReplicas = 1;

    FleetWorkloadSpec spec = lightWorkload(8);
    spec.tenants.baseMeanGapCycles = 400.0; // Hot enough to overflow 1.

    const FleetServer fleet(smallGpu(), serve, cfg, kKey);
    const FleetReport report = fleet.run(spec);

    ASSERT_FALSE(report.autoscalerActions.empty());
    const AutoscalerAction &first = report.autoscalerActions.front();
    EXPECT_EQ(first.fromReplicas, 1u);
    EXPECT_EQ(first.toReplicas, 2u);
    EXPECT_GT(report.meanActiveReplicas, 1.0);
    // Replicas beyond the initial active set only serve once activated.
    EXPECT_GT(report.replicas[1].completed + report.replicas[2].completed,
              0u);
}

TEST(FleetServerDeathTest, PinningToADrainableReplicaIsRejected)
{
    FleetConfig cfg = smallFleet();
    cfg.numReplicas = 3;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.minReplicas = 1;
    const FleetServer fleet(smallGpu(), smallServe(), cfg, kKey);
    FleetWorkloadSpec spec = lightWorkload(2);
    spec.pinProbesToReplica = 2;
    EXPECT_DEATH((void)fleet.run(spec), "pin");
}

TEST(FleetServerDeathTest, ImpossibleFleetWorkloadDiesOnLivelockGuard)
{
    FleetConfig cfg = smallFleet();
    cfg.maxSimCycles = 50'000;
    const FleetServer fleet(smallGpu(), smallServe(), cfg, kKey);
    FleetWorkloadSpec spec = lightWorkload(4);
    spec.probeThinkCycles = 100'000; // Probes cannot finish in time.
    spec.tenants.tenants = 0;
    EXPECT_DEATH((void)fleet.run(spec), "livelocked");
}

} // namespace
} // namespace rcoal::fleet
