/**
 * @file
 * The fleet's reproducibility contract: a fleet run is a pure function
 * of its configuration — byte-identical across repeated runs, across
 * cycle-skipping on/off (the lockstep-skip property), and across
 * routing-policy-independent observables like probe plaintexts.
 */

#include <gtest/gtest.h>

#include <array>

#include "rcoal/common/thread_pool.hpp"
#include "rcoal/fleet/fleet.hpp"

namespace rcoal::fleet {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

sim::GpuConfig
smallGpu(bool cycle_skipping = true)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.seed = 42;
    cfg.cycleSkipping = cycle_skipping;
    return cfg;
}

serve::ServeConfig
smallServe()
{
    serve::ServeConfig cfg;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.smsPerKernel = 2;
    return cfg;
}

FleetConfig
testFleet(RoutingPolicy routing)
{
    FleetConfig cfg;
    cfg.numReplicas = 2;
    cfg.routing = routing;
    cfg.maxSimCycles = 20'000'000;
    return cfg;
}

FleetWorkloadSpec
testWorkload()
{
    FleetWorkloadSpec spec;
    spec.probeSamples = 5;
    spec.probeLines = 32;
    spec.probeSeed = 7;
    spec.probeThinkCycles = 100;
    spec.tenants.tenants = 2;
    spec.tenants.baseMeanGapCycles = 2500.0;
    spec.tenants.burstProbability = 0.2;
    spec.tenants.burstLength = 3;
    spec.tenants.lineChoices = {32};
    spec.tenants.seed = 99;
    return spec;
}

void
expectIdenticalFleetReports(const FleetReport &a, const FleetReport &b)
{
    ASSERT_EQ(a.completed.size(), b.completed.size());
    ASSERT_EQ(a.completedReplica, b.completedReplica);
    for (std::size_t i = 0; i < a.completed.size(); ++i) {
        const auto &ca = a.completed[i];
        const auto &cb = b.completed[i];
        EXPECT_EQ(ca.id, cb.id) << "completion " << i;
        EXPECT_EQ(ca.arrival, cb.arrival) << "completion " << i;
        EXPECT_EQ(ca.launched, cb.launched) << "completion " << i;
        EXPECT_EQ(ca.completed, cb.completed) << "completion " << i;
        EXPECT_EQ(ca.ciphertext, cb.ciphertext) << "completion " << i;
        EXPECT_EQ(ca.kernelTotalTime, cb.kernelTotalTime)
            << "completion " << i;
        EXPECT_EQ(ca.kernelLastRoundTime, cb.kernelLastRoundTime)
            << "completion " << i;
        EXPECT_EQ(ca.kernelPredictedLastRoundAccesses,
                  cb.kernelPredictedLastRoundAccesses)
            << "completion " << i;
    }
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (std::size_t r = 0; r < a.replicas.size(); ++r) {
        EXPECT_EQ(a.replicas[r].completed, b.replicas[r].completed);
        EXPECT_EQ(a.replicas[r].kernelsLaunched,
                  b.replicas[r].kernelsLaunched);
        EXPECT_EQ(a.replicas[r].activeCycles,
                  b.replicas[r].activeCycles);
    }
}

class FleetDeterminismTest
    : public ::testing::TestWithParam<RoutingPolicy>
{
};

TEST_P(FleetDeterminismTest, RepeatedRunsAreByteIdentical)
{
    const FleetServer fleet(smallGpu(), smallServe(),
                            testFleet(GetParam()), kKey);
    const FleetReport first = fleet.run(testWorkload());
    const FleetReport second = fleet.run(testWorkload());
    expectIdenticalFleetReports(first, second);
}

TEST_P(FleetDeterminismTest, CycleSkippingDoesNotChangeTheRun)
{
    const FleetServer skipping(smallGpu(true), smallServe(),
                               testFleet(GetParam()), kKey);
    const FleetServer stepping(smallGpu(false), smallServe(),
                               testFleet(GetParam()), kKey);
    const FleetReport fast = skipping.run(testWorkload());
    const FleetReport slow = stepping.run(testWorkload());
    expectIdenticalFleetReports(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, FleetDeterminismTest,
    ::testing::Values(RoutingPolicy::RoundRobin,
                      RoutingPolicy::JoinShortestQueue,
                      RoutingPolicy::TenantAffinity),
    [](const auto &info) {
        return std::string(routingPolicyName(info.param));
    });

TEST(FleetDeterminismTest2, ThreadPoolWidthDoesNotChangeTheRun)
{
    // Fleet runs are single-threaded by design; spreading scenarios
    // over the bench pool must reproduce the sequential result no
    // matter how wide the pool is (the RCOAL_THREADS contract).
    const FleetServer fleet(smallGpu(), smallServe(),
                            testFleet(RoutingPolicy::RoundRobin), kKey);
    const FleetReport sequential = fleet.run(testWorkload());

    ThreadPool pool(4);
    std::vector<FleetReport> pooled(3);
    pool.parallelFor(pooled.size(), [&fleet, &pooled](std::size_t i) {
        pooled[i] = fleet.run(testWorkload());
    });
    for (const FleetReport &report : pooled)
        expectIdenticalFleetReports(sequential, report);
}

TEST(FleetDeterminismTest2, AutoscaledRunsAreSkipInvariant)
{
    FleetConfig cfg = testFleet(RoutingPolicy::JoinShortestQueue);
    cfg.numReplicas = 3;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.evalIntervalCycles = 10'000;
    cfg.autoscaler.queueDepthSlo = 2.0;
    cfg.autoscaler.scaleDownQueueDepth = 0.25;
    cfg.autoscaler.cooldownCycles = 0;

    FleetWorkloadSpec spec = testWorkload();
    spec.tenants.baseMeanGapCycles = 500.0;

    const FleetServer skipping(smallGpu(true), smallServe(), cfg, kKey);
    const FleetServer stepping(smallGpu(false), smallServe(), cfg, kKey);
    const FleetReport fast = skipping.run(spec);
    const FleetReport slow = stepping.run(spec);
    expectIdenticalFleetReports(fast, slow);
    ASSERT_EQ(fast.autoscalerActions.size(),
              slow.autoscalerActions.size());
    for (std::size_t i = 0; i < fast.autoscalerActions.size(); ++i) {
        EXPECT_EQ(fast.autoscalerActions[i].cycle,
                  slow.autoscalerActions[i].cycle);
        EXPECT_EQ(fast.autoscalerActions[i].toReplicas,
                  slow.autoscalerActions[i].toReplicas);
    }
}

} // namespace
} // namespace rcoal::fleet
