/**
 * @file
 * Router policies: round-robin order, JSQ depth sensitivity, affinity
 * stability — all deterministic.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <vector>

#include "rcoal/fleet/replica.hpp"
#include "rcoal/fleet/router.hpp"

namespace rcoal::fleet {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

class FleetRouterTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
        gpu.numSms = 4;
        serve::ServeConfig serve;
        serve.smsPerKernel = 2;
        serve.queueCapacity = 8;
        for (unsigned r = 0; r < 3; ++r) {
            replicas.push_back(
                std::make_unique<Replica>(r, gpu, serve, kKey));
            candidates.push_back(replicas.back().get());
        }
    }

    static serve::Request makeRequest(std::uint64_t tenant)
    {
        serve::Request request;
        request.id = tenant * 100;
        request.tenant = tenant;
        return request;
    }

    std::vector<std::unique_ptr<Replica>> replicas;
    std::vector<Replica *> candidates;
};

TEST_F(FleetRouterTest, RoundRobinCyclesThroughActiveSet)
{
    Router router(RoutingPolicy::RoundRobin);
    std::vector<unsigned> picks;
    for (int i = 0; i < 7; ++i)
        picks.push_back(router.route(makeRequest(1), candidates).index());
    EXPECT_EQ(picks, (std::vector<unsigned>{0, 1, 2, 0, 1, 2, 0}));
}

TEST_F(FleetRouterTest, RoundRobinCursorSurvivesActiveSetShrink)
{
    Router router(RoutingPolicy::RoundRobin);
    (void)router.route(makeRequest(1), candidates);
    (void)router.route(makeRequest(1), candidates);
    const std::vector<Replica *> fewer = {candidates[0], candidates[1]};
    // Cursor keeps advancing modulo the new set size; no reset, no
    // out-of-range access.
    const unsigned pick = router.route(makeRequest(1), fewer).index();
    EXPECT_LT(pick, 2u);
}

TEST_F(FleetRouterTest, JsqPicksTheShortestQueueTiesLowestIndex)
{
    Router router(RoutingPolicy::JoinShortestQueue);
    // All empty: tie broken toward replica 0.
    EXPECT_EQ(router.route(makeRequest(1), candidates).index(), 0u);

    ASSERT_TRUE(replicas[0]->queue().tryPush(makeRequest(7)));
    ASSERT_TRUE(replicas[0]->queue().tryPush(makeRequest(7)));
    ASSERT_TRUE(replicas[1]->queue().tryPush(makeRequest(7)));
    // Depths {2, 1, 0}: replica 2 wins.
    EXPECT_EQ(router.route(makeRequest(1), candidates).index(), 2u);

    ASSERT_TRUE(replicas[2]->queue().tryPush(makeRequest(7)));
    // Depths {2, 1, 1}: tie between 1 and 2 goes to 1.
    EXPECT_EQ(router.route(makeRequest(1), candidates).index(), 1u);
}

TEST_F(FleetRouterTest, AffinityKeepsATenantOnOneReplica)
{
    Router router(RoutingPolicy::TenantAffinity);
    for (std::uint64_t tenant = 1; tenant <= 8; ++tenant) {
        const unsigned first =
            router.route(makeRequest(tenant), candidates).index();
        for (int repeat = 0; repeat < 3; ++repeat) {
            EXPECT_EQ(
                router.route(makeRequest(tenant), candidates).index(),
                first)
                << "tenant " << tenant;
        }
    }
}

TEST_F(FleetRouterTest, AffinitySpreadsDistinctTenants)
{
    Router router(RoutingPolicy::TenantAffinity);
    std::set<unsigned> used;
    for (std::uint64_t tenant = 1; tenant <= 32; ++tenant)
        used.insert(router.route(makeRequest(tenant), candidates).index());
    // 32 tenants hashed onto 3 replicas must hit more than one of them.
    EXPECT_GT(used.size(), 1u);
}

TEST_F(FleetRouterTest, RoutingIsDeterministicAcrossRouters)
{
    Router a(RoutingPolicy::TenantAffinity);
    Router b(RoutingPolicy::TenantAffinity);
    for (std::uint64_t tenant = 1; tenant <= 16; ++tenant) {
        EXPECT_EQ(a.route(makeRequest(tenant), candidates).index(),
                  b.route(makeRequest(tenant), candidates).index());
    }
}

} // namespace
} // namespace rcoal::fleet
