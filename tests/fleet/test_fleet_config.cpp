/**
 * @file
 * FleetConfig / AutoscalerConfig validation and defaulting rules.
 */

#include <gtest/gtest.h>

#include "rcoal/fleet/config.hpp"

namespace rcoal::fleet {
namespace {

sim::GpuConfig
smallGpu()
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    return cfg;
}

serve::ServeConfig
smallServe()
{
    serve::ServeConfig cfg;
    cfg.smsPerKernel = 2;
    return cfg;
}

TEST(FleetConfigTest, RoutingPolicyNames)
{
    EXPECT_STREQ(routingPolicyName(RoutingPolicy::RoundRobin), "RR");
    EXPECT_STREQ(routingPolicyName(RoutingPolicy::JoinShortestQueue),
                 "JSQ");
    EXPECT_STREQ(routingPolicyName(RoutingPolicy::TenantAffinity),
                 "Affinity");
}

TEST(FleetConfigTest, DefaultConfigValidates)
{
    FleetConfig cfg;
    cfg.validate(smallGpu(), smallServe());
    EXPECT_EQ(cfg.resolvedInitialActive(), cfg.numReplicas);
}

TEST(FleetConfigTest, InitialActiveDefaultsToMinReplicasUnderAutoscaler)
{
    FleetConfig cfg;
    cfg.numReplicas = 4;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.minReplicas = 2;
    cfg.validate(smallGpu(), smallServe());
    EXPECT_EQ(cfg.resolvedInitialActive(), 2u);
}

TEST(FleetConfigTest, ExplicitInitialActiveWins)
{
    FleetConfig cfg;
    cfg.numReplicas = 4;
    cfg.initialActiveReplicas = 3;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.minReplicas = 1;
    cfg.validate(smallGpu(), smallServe());
    EXPECT_EQ(cfg.resolvedInitialActive(), 3u);
}

TEST(FleetConfigTest, DescribeMentionsRoutingAndAutoscaler)
{
    FleetConfig cfg;
    cfg.numReplicas = 3;
    cfg.routing = RoutingPolicy::JoinShortestQueue;
    cfg.autoscaler.enabled = true;
    const std::string text = cfg.describe();
    EXPECT_NE(text.find("JSQ"), std::string::npos) << text;
    EXPECT_NE(text.find("autoscaler"), std::string::npos) << text;
}

TEST(FleetConfigDeathTest, RejectsEmptyFleet)
{
    FleetConfig cfg;
    cfg.numReplicas = 0;
    EXPECT_DEATH(cfg.validate(smallGpu(), smallServe()),
                 "numReplicas must be positive");
}

TEST(FleetConfigDeathTest, RejectsInitialActiveAbovePool)
{
    FleetConfig cfg;
    cfg.numReplicas = 2;
    cfg.initialActiveReplicas = 3;
    EXPECT_DEATH(cfg.validate(smallGpu(), smallServe()),
                 "exceeds the provisioned pool");
}

TEST(FleetConfigDeathTest, RejectsInvertedHysteresisBand)
{
    FleetConfig cfg;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.queueDepthSlo = 2.0;
    cfg.autoscaler.scaleDownQueueDepth = 2.0;
    EXPECT_DEATH(cfg.validate(smallGpu(), smallServe()),
                 "hysteresis band");
}

TEST(FleetConfigDeathTest, RejectsMinReplicasOutsidePool)
{
    FleetConfig cfg;
    cfg.numReplicas = 2;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.minReplicas = 3;
    EXPECT_DEATH(cfg.validate(smallGpu(), smallServe()),
                 "minReplicas");
}

} // namespace
} // namespace rcoal::fleet
