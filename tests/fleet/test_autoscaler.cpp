/**
 * @file
 * QueueDepthAutoscaler: registry-driven decisions, hysteresis band,
 * cooldown and the action log.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rcoal/fleet/autoscaler.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::fleet {
namespace {

constexpr unsigned kPool = 3;

class FleetAutoscalerTest : public ::testing::Test
{
  protected:
    FleetAutoscalerTest()
    {
        cfg.enabled = true;
        cfg.evalIntervalCycles = 1000;
        cfg.queueDepthSlo = 4.0;
        cfg.scaleDownQueueDepth = 1.0;
        cfg.cooldownCycles = 0;
        cfg.minReplicas = 1;
        for (unsigned r = 0; r < kPool; ++r) {
            depth.push_back(&registry.gauge(
                "rcoal_fleet_queue_depth", "pending requests",
                {{"replica", std::to_string(r)}}));
        }
    }

    void setDepths(std::initializer_list<double> values)
    {
        unsigned r = 0;
        for (double v : values)
            depth[r++]->set(v);
    }

    AutoscalerConfig cfg;
    telemetry::MetricRegistry registry;
    std::vector<telemetry::Gauge *> depth;
};

TEST_F(FleetAutoscalerTest, ScalesUpWhenMeanDepthExceedsSlo)
{
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    EXPECT_EQ(scaler.nextEvalCycle(), Cycle{1000});
    setDepths({6.0, 8.0, 0.0}); // Mean over 2 active = 7 > 4.
    EXPECT_EQ(scaler.evaluate(1000, 2), 3u);
    EXPECT_EQ(scaler.nextEvalCycle(), Cycle{2000});
    ASSERT_EQ(scaler.actions().size(), 1u);
    EXPECT_EQ(scaler.actions()[0].fromReplicas, 2u);
    EXPECT_EQ(scaler.actions()[0].toReplicas, 3u);
    EXPECT_DOUBLE_EQ(scaler.actions()[0].meanQueueDepth, 7.0);
}

TEST_F(FleetAutoscalerTest, ScaleUpIsCappedAtThePool)
{
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    setDepths({9.0, 9.0, 9.0});
    EXPECT_EQ(scaler.evaluate(1000, 3), 3u);
    EXPECT_TRUE(scaler.actions().empty());
}

TEST_F(FleetAutoscalerTest, HoldsInsideTheHysteresisBand)
{
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    setDepths({2.0, 3.0, 0.0}); // Mean 2.5 in [1, 4]: no action.
    EXPECT_EQ(scaler.evaluate(1000, 2), 2u);
    EXPECT_TRUE(scaler.actions().empty());
}

TEST_F(FleetAutoscalerTest, ScalesDownBelowTheLowerBoundToTheFloor)
{
    cfg.minReplicas = 2;
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    setDepths({0.0, 0.0, 0.0});
    EXPECT_EQ(scaler.evaluate(1000, 3), 2u);
    // Already at the floor: no further shrink, no action logged.
    EXPECT_EQ(scaler.evaluate(2000, 2), 2u);
    ASSERT_EQ(scaler.actions().size(), 1u);
    EXPECT_EQ(scaler.actions()[0].toReplicas, 2u);
}

TEST_F(FleetAutoscalerTest, CooldownSuppressesBackToBackActions)
{
    cfg.cooldownCycles = 2500;
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    setDepths({9.0, 0.0, 0.0});
    EXPECT_EQ(scaler.evaluate(1000, 1), 2u); // First action is free.
    setDepths({9.0, 9.0, 0.0});
    EXPECT_EQ(scaler.evaluate(2000, 2), 2u); // 1000 < 2500: held.
    EXPECT_EQ(scaler.evaluate(3000, 2), 2u); // 2000 < 2500: held.
    EXPECT_EQ(scaler.evaluate(4000, 2), 3u); // 3000 >= 2500: acts.
    EXPECT_EQ(scaler.actions().size(), 2u);
}

TEST_F(FleetAutoscalerTest, SloIsReadBackFromTheRegistry)
{
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    EXPECT_DOUBLE_EQ(
        registry.readValue("rcoal_fleet_autoscaler_depth_slo"), 4.0);
    setDepths({3.0, 3.0, 0.0}); // Mean 3 < 4: hold...
    EXPECT_EQ(scaler.evaluate(1000, 2), 2u);
    // ...but an operator retuning the SLO gauge changes the decision.
    registry
        .gauge("rcoal_fleet_autoscaler_depth_slo",
               "Mean queue depth per active replica the fleet scales to")
        .set(2.0);
    EXPECT_EQ(scaler.evaluate(2000, 2), 3u);
}

TEST_F(FleetAutoscalerTest, PublishesDesiredReplicasGauge)
{
    QueueDepthAutoscaler scaler(cfg, registry, kPool);
    setDepths({9.0, 0.0, 0.0});
    (void)scaler.evaluate(1000, 1);
    EXPECT_DOUBLE_EQ(
        registry.readValue("rcoal_fleet_autoscaler_desired_replicas"),
        2.0);
}

} // namespace
} // namespace rcoal::fleet
