/**
 * @file
 * Unit tests for the S-box tables.
 */

#include <gtest/gtest.h>

#include <set>

#include "rcoal/aes/sbox.hpp"

namespace rcoal::aes {
namespace {

TEST(Sbox, PinnedFipsEntries)
{
    // Corner and well-known entries from the FIPS-197 table.
    EXPECT_EQ(sbox()[0x00], 0x63);
    EXPECT_EQ(sbox()[0x01], 0x7c);
    EXPECT_EQ(sbox()[0x10], 0xca);
    EXPECT_EQ(sbox()[0x53], 0xed);
    EXPECT_EQ(sbox()[0xff], 0x16);
    EXPECT_EQ(sbox()[0xc9], 0xdd);
}

TEST(Sbox, IsAPermutation)
{
    std::set<std::uint8_t> seen(sbox().begin(), sbox().end());
    EXPECT_EQ(seen.size(), 256u);
}

TEST(Sbox, HasNoFixedPoints)
{
    for (int i = 0; i < 256; ++i) {
        EXPECT_NE(sbox()[static_cast<std::size_t>(i)], i);
        // Also no "anti-fixed" points (complement), a classic S-box
        // property.
        EXPECT_NE(sbox()[static_cast<std::size_t>(i)], i ^ 0xff);
    }
}

TEST(InvSbox, PinnedFipsEntries)
{
    EXPECT_EQ(invSbox()[0x00], 0x52);
    EXPECT_EQ(invSbox()[0x63], 0x00);
    EXPECT_EQ(invSbox()[0x16], 0xff);
}

TEST(InvSbox, RoundTripsWithForward)
{
    for (int i = 0; i < 256; ++i) {
        const auto b = static_cast<std::uint8_t>(i);
        EXPECT_EQ(invSubByte(subByte(b)), b);
        EXPECT_EQ(subByte(invSubByte(b)), b);
    }
}

} // namespace
} // namespace rcoal::aes
