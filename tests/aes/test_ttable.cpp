/**
 * @file
 * Unit tests for the T-table AES and its lookup tracing - the property
 * the whole attack rests on (Eq. 3) is verified here.
 */

#include <gtest/gtest.h>

#include <array>

#include "rcoal/aes/aes.hpp"
#include "rcoal/aes/sbox.hpp"
#include "rcoal/aes/ttable.hpp"
#include "rcoal/common/rng.hpp"

namespace rcoal::aes {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(TTable, MatchesReferenceAesOnRandomBlocks)
{
    Rng rng(12);
    const Aes reference(kKey);
    const TTableAes ttable(kKey);
    for (int trial = 0; trial < 200; ++trial) {
        Block pt{};
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(ttable.encryptBlock(pt), reference.encryptBlock(pt));
    }
}

TEST(TTable, MatchesReferenceForAllKeySizes)
{
    Rng rng(13);
    for (std::size_t len : {16u, 24u, 32u}) {
        std::vector<std::uint8_t> key(len);
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng.below(256));
        const Aes reference(key);
        const TTableAes ttable(key);
        Block pt{};
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(ttable.encryptBlock(pt), reference.encryptBlock(pt));
    }
}

TEST(TTable, TracedEncryptionProducesSameCiphertext)
{
    Rng rng(14);
    const TTableAes ttable(kKey);
    Block pt{};
    for (auto &b : pt)
        b = static_cast<std::uint8_t>(rng.below(256));
    std::vector<TableLookup> trace;
    EXPECT_EQ(ttable.encryptBlockTraced(pt, trace),
              ttable.encryptBlock(pt));
}

TEST(TTable, TraceShape)
{
    const TTableAes ttable(kKey);
    std::vector<TableLookup> trace;
    ttable.encryptBlockTraced(Block{}, trace);
    ASSERT_EQ(trace.size(), 10u * kLookupsPerRound);
    // Rounds 1..9 use tables 0..3 in a fixed static pattern.
    for (unsigned r = 0; r < 9; ++r) {
        for (unsigned k = 0; k < kLookupsPerRound; ++k) {
            const TableLookup &lk = trace[r * kLookupsPerRound + k];
            EXPECT_EQ(lk.round, r + 1);
            EXPECT_EQ(lk.table, k % 4);
        }
    }
    // The last round uses T4 exclusively.
    for (unsigned k = 0; k < kLookupsPerRound; ++k) {
        const TableLookup &lk = trace[9 * kLookupsPerRound + k];
        EXPECT_EQ(lk.round, 10);
        EXPECT_EQ(lk.table, kLastRoundTable);
    }
}

TEST(TTable, LastRoundTraceSatisfiesEquationThree)
{
    // The attack's core identity: the j-th last-round lookup index t_j
    // satisfies t_j = InvSbox[c_j ^ k10_j].
    Rng rng(15);
    const TTableAes ttable(kKey);
    const Block k10 = ttable.schedule().roundKey(10);
    for (int trial = 0; trial < 100; ++trial) {
        Block pt{};
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.below(256));
        std::vector<TableLookup> trace;
        const Block ct = ttable.encryptBlockTraced(pt, trace);
        for (unsigned j = 0; j < 16; ++j) {
            const TableLookup &lk =
                trace[9 * kLookupsPerRound + j];
            EXPECT_EQ(lk.index, invSubByte(ct[j] ^ k10[j]))
                << "byte " << j;
        }
    }
}

TEST(TTable, TableContentsConsistentWithSbox)
{
    for (int i = 0; i < 256; ++i) {
        const std::uint8_t s = subByte(static_cast<std::uint8_t>(i));
        const std::uint32_t t4 =
            TTableAes::table(kLastRoundTable)[static_cast<std::size_t>(i)];
        // T4 replicates Sbox[i] in all four byte lanes.
        EXPECT_EQ(t4 & 0xff, s);
        EXPECT_EQ((t4 >> 8) & 0xff, s);
        EXPECT_EQ((t4 >> 16) & 0xff, s);
        EXPECT_EQ((t4 >> 24) & 0xff, s);
        // Te0's second byte lane holds Sbox[i].
        EXPECT_EQ((TTableAes::table(0)[static_cast<std::size_t>(i)] >> 16) &
                      0xff,
                  s);
    }
}

TEST(TTable, RotatedTableRelationship)
{
    for (int i = 0; i < 256; ++i) {
        const std::uint32_t te0 =
            TTableAes::table(0)[static_cast<std::size_t>(i)];
        const std::uint32_t te1 =
            TTableAes::table(1)[static_cast<std::size_t>(i)];
        EXPECT_EQ(te1, (te0 >> 8) | (te0 << 24));
    }
}

TEST(TTable, ConstructsFromExpandedSchedule)
{
    const KeySchedule ks(kKey, KeySize::Aes128);
    const TTableAes from_schedule(ks);
    const TTableAes from_key(kKey);
    Block pt{};
    pt[3] = 0x7f;
    EXPECT_EQ(from_schedule.encryptBlock(pt), from_key.encryptBlock(pt));
}

TEST(TTable, TraceAppendsWithoutClearing)
{
    const TTableAes ttable(kKey);
    std::vector<TableLookup> trace;
    ttable.encryptBlockTraced(Block{}, trace);
    const std::size_t once = trace.size();
    ttable.encryptBlockTraced(Block{}, trace);
    EXPECT_EQ(trace.size(), 2 * once);
}

} // namespace
} // namespace rcoal::aes
