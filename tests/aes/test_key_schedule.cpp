/**
 * @file
 * Unit tests for the AES key schedule and its inversion.
 */

#include <gtest/gtest.h>

#include <array>

#include "rcoal/aes/key_schedule.hpp"
#include "rcoal/common/rng.hpp"

namespace rcoal::aes {
namespace {

const std::array<std::uint8_t, 16> kFipsKey128 = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(KeySchedule, SizeHelpers)
{
    EXPECT_EQ(keyWords(KeySize::Aes128), 4u);
    EXPECT_EQ(keyWords(KeySize::Aes192), 6u);
    EXPECT_EQ(keyWords(KeySize::Aes256), 8u);
    EXPECT_EQ(numRounds(KeySize::Aes128), 10u);
    EXPECT_EQ(numRounds(KeySize::Aes192), 12u);
    EXPECT_EQ(numRounds(KeySize::Aes256), 14u);
    EXPECT_EQ(keyBytes(KeySize::Aes128), 16u);
}

TEST(KeySchedule, Fips197Appendix128)
{
    // FIPS-197 Appendix A.1 expansion of the 128-bit key.
    const KeySchedule ks(kFipsKey128, KeySize::Aes128);
    const auto &w = ks.words();
    ASSERT_EQ(w.size(), 44u);
    EXPECT_EQ(w[0], 0x2b7e1516u);
    EXPECT_EQ(w[4], 0xa0fafe17u);
    EXPECT_EQ(w[5], 0x88542cb1u);
    EXPECT_EQ(w[10], 0x5935807au);
    EXPECT_EQ(w[23], 0x11f915bcu);
    EXPECT_EQ(w[40], 0xd014f9a8u);
    EXPECT_EQ(w[43], 0xb6630ca6u);
}

TEST(KeySchedule, Fips197Appendix192And256)
{
    const std::array<std::uint8_t, 24> key192 = {
        0x8e, 0x73, 0xb0, 0xf7, 0xda, 0x0e, 0x64, 0x52,
        0xc8, 0x10, 0xf3, 0x2b, 0x80, 0x90, 0x79, 0xe5,
        0x62, 0xf8, 0xea, 0xd2, 0x52, 0x2c, 0x6b, 0x7b};
    const KeySchedule ks192(key192, KeySize::Aes192);
    ASSERT_EQ(ks192.words().size(), 52u);
    EXPECT_EQ(ks192.words()[6], 0xfe0c91f7u);
    EXPECT_EQ(ks192.words()[51], 0x01002202u);

    const std::array<std::uint8_t, 32> key256 = {
        0x60, 0x3d, 0xeb, 0x10, 0x15, 0xca, 0x71, 0xbe,
        0x2b, 0x73, 0xae, 0xf0, 0x85, 0x7d, 0x77, 0x81,
        0x1f, 0x35, 0x2c, 0x07, 0x3b, 0x61, 0x08, 0xd7,
        0x2d, 0x98, 0x10, 0xa3, 0x09, 0x14, 0xdf, 0xf4};
    const KeySchedule ks256(key256, KeySize::Aes256);
    ASSERT_EQ(ks256.words().size(), 60u);
    EXPECT_EQ(ks256.words()[8], 0x9ba35411u);
    EXPECT_EQ(ks256.words()[59], 0x706c631eu);
}

TEST(KeySchedule, RoundKeyZeroIsTheCipherKey)
{
    const KeySchedule ks(kFipsKey128, KeySize::Aes128);
    const Block rk0 = ks.roundKey(0);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(rk0[i], kFipsKey128[i]);
}

TEST(KeySchedule, LastRoundKeyBytes)
{
    const KeySchedule ks(kFipsKey128, KeySize::Aes128);
    const Block rk10 = ks.roundKey(10);
    // w[40..43] = d014f9a8 c9ee2589 e13f0cc8 b6630ca6.
    const std::array<std::uint8_t, 16> expected = {
        0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89,
        0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6};
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(rk10[i], expected[i]) << "byte " << i;
}

TEST(KeyScheduleInversion, RecoversFipsKey)
{
    const KeySchedule ks(kFipsKey128, KeySize::Aes128);
    const Block recovered = invertFromLastRoundKey(ks.roundKey(10));
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(recovered[i], kFipsKey128[i]) << "byte " << i;
}

TEST(KeyScheduleInversion, RoundTripsRandomKeys)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        std::array<std::uint8_t, 16> key{};
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng.below(256));
        const KeySchedule ks(key, KeySize::Aes128);
        const Block recovered = invertFromLastRoundKey(ks.roundKey(10));
        for (unsigned i = 0; i < 16; ++i)
            EXPECT_EQ(recovered[i], key[i]);
    }
}

TEST(KeyScheduleDeathTest, WrongKeyLengthPanics)
{
    const std::array<std::uint8_t, 10> short_key{};
    EXPECT_DEATH(KeySchedule(short_key, KeySize::Aes128), "16 bytes");
}

TEST(KeyScheduleDeathTest, RoundKeyOutOfRangePanics)
{
    const KeySchedule ks(kFipsKey128, KeySize::Aes128);
    EXPECT_DEATH(ks.roundKey(11), "out of range");
}

} // namespace
} // namespace rcoal::aes
