/**
 * @file
 * Unit tests for GF(2^8) arithmetic.
 */

#include <gtest/gtest.h>

#include "rcoal/aes/galois.hpp"

namespace rcoal::aes {
namespace {

TEST(Galois, XtimeKnownValues)
{
    EXPECT_EQ(gfXtime(0x57), 0xae);
    EXPECT_EQ(gfXtime(0xae), 0x47); // wraps through the polynomial
    EXPECT_EQ(gfXtime(0x80), 0x1b);
    EXPECT_EQ(gfXtime(0x00), 0x00);
}

TEST(Galois, MulKnownValues)
{
    // FIPS-197 example: 0x57 * 0x13 = 0xfe.
    EXPECT_EQ(gfMul(0x57, 0x13), 0xfe);
    EXPECT_EQ(gfMul(0x57, 0x02), 0xae);
    EXPECT_EQ(gfMul(0x57, 0x01), 0x57);
}

TEST(Galois, MulByZeroAndOne)
{
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(gfMul(static_cast<std::uint8_t>(a), 0), 0);
        EXPECT_EQ(gfMul(static_cast<std::uint8_t>(a), 1), a);
        EXPECT_EQ(gfMul(1, static_cast<std::uint8_t>(a)), a);
    }
}

TEST(Galois, MulIsCommutative)
{
    for (int a = 0; a < 256; a += 7) {
        for (int b = 0; b < 256; b += 11) {
            EXPECT_EQ(gfMul(static_cast<std::uint8_t>(a),
                            static_cast<std::uint8_t>(b)),
                      gfMul(static_cast<std::uint8_t>(b),
                            static_cast<std::uint8_t>(a)));
        }
    }
}

TEST(Galois, MulDistributesOverXor)
{
    for (int a = 1; a < 256; a += 13) {
        for (int b = 1; b < 256; b += 17) {
            for (int c = 1; c < 256; c += 29) {
                const auto au = static_cast<std::uint8_t>(a);
                const auto bu = static_cast<std::uint8_t>(b);
                const auto cu = static_cast<std::uint8_t>(c);
                EXPECT_EQ(gfMul(au, bu ^ cu),
                          gfMul(au, bu) ^ gfMul(au, cu));
            }
        }
    }
}

TEST(Galois, InverseIsTwoSided)
{
    for (int a = 1; a < 256; ++a) {
        const auto au = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gfMul(au, gfInv(au)), 1) << "a=" << a;
        EXPECT_EQ(gfMul(gfInv(au), au), 1) << "a=" << a;
    }
}

TEST(Galois, InverseOfZeroIsZeroByConvention)
{
    EXPECT_EQ(gfInv(0), 0);
}

TEST(Galois, InverseIsInvolution)
{
    for (int a = 0; a < 256; ++a) {
        const auto au = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gfInv(gfInv(au)), au);
    }
}

} // namespace
} // namespace rcoal::aes
