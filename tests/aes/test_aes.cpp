/**
 * @file
 * Unit tests for the reference AES implementation (FIPS-197 vectors).
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "rcoal/aes/aes.hpp"
#include "rcoal/common/rng.hpp"

namespace rcoal::aes {
namespace {

Block
blockFromHex(const char *hex)
{
    Block out{};
    for (unsigned i = 0; i < 16; ++i) {
        unsigned byte = 0;
        sscanf(hex + 2 * i, "%2x", &byte);
        out[i] = static_cast<std::uint8_t>(byte);
    }
    return out;
}

TEST(Aes, Fips197Appendix128)
{
    const std::array<std::uint8_t, 16> key = {
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    const Aes aes(key);
    const Block pt = blockFromHex("00112233445566778899aabbccddeeff");
    const Block expected = blockFromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes, Fips197Appendix192)
{
    const std::array<std::uint8_t, 24> key = {
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
        0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17};
    const Aes aes(key);
    const Block pt = blockFromHex("00112233445566778899aabbccddeeff");
    const Block expected = blockFromHex("dda97ca4864cdfe06eaf70a0ec0d7191");
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes, Fips197Appendix256)
{
    const std::array<std::uint8_t, 32> key = {
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
        0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
        0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d, 0x1e, 0x1f};
    const Aes aes(key);
    const Block pt = blockFromHex("00112233445566778899aabbccddeeff");
    const Block expected = blockFromHex("8ea2b7ca516745bfeafc49904b496089");
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes, Fips197AppendixB)
{
    // The worked example of FIPS-197 Appendix B.
    const std::array<std::uint8_t, 16> key = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const Aes aes(key);
    const Block pt = blockFromHex("3243f6a8885a308d313198a2e0370734");
    const Block expected = blockFromHex("3925841d02dc09fbdc118597196a0b32");
    EXPECT_EQ(aes.encryptBlock(pt), expected);
}

TEST(Aes, DecryptInvertsEncrypt)
{
    Rng rng(4);
    std::array<std::uint8_t, 16> key{};
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.below(256));
    const Aes aes(key);
    for (int trial = 0; trial < 100; ++trial) {
        Block pt{};
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt);
    }
}

TEST(Aes, DecryptInvertsEncryptAllKeySizes)
{
    Rng rng(6);
    const Block pt = blockFromHex("00112233445566778899aabbccddeeff");
    for (std::size_t len : {16u, 24u, 32u}) {
        std::vector<std::uint8_t> key(len);
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng.below(256));
        const Aes aes(key);
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(pt)), pt);
    }
}

TEST(Aes, EcbEncryptsBlockwise)
{
    const std::array<std::uint8_t, 16> key{};
    const Aes aes(key);
    std::vector<Block> pts(3);
    pts[1][0] = 1;
    pts[2][0] = 2;
    const auto cts = aes.encryptEcb(pts);
    ASSERT_EQ(cts.size(), 3u);
    EXPECT_EQ(cts[0], aes.encryptBlock(pts[0]));
    EXPECT_EQ(cts[1], aes.encryptBlock(pts[1]));
    EXPECT_NE(cts[0], cts[1]);
}

TEST(AesTransforms, ShiftRowsInverse)
{
    Block state;
    for (unsigned i = 0; i < 16; ++i)
        state[i] = static_cast<std::uint8_t>(i);
    Block copy = state;
    shiftRows(copy);
    EXPECT_NE(copy, state);
    invShiftRows(copy);
    EXPECT_EQ(copy, state);
}

TEST(AesTransforms, ShiftRowsRowZeroUntouched)
{
    Block state;
    for (unsigned i = 0; i < 16; ++i)
        state[i] = static_cast<std::uint8_t>(i);
    shiftRows(state);
    // Row 0 occupies indices 0, 4, 8, 12 (column-major layout).
    EXPECT_EQ(state[0], 0);
    EXPECT_EQ(state[4], 4);
    EXPECT_EQ(state[8], 8);
    EXPECT_EQ(state[12], 12);
    // Row 1 rotates by one column: (1,5,9,13) -> (5,9,13,1).
    EXPECT_EQ(state[1], 5);
    EXPECT_EQ(state[13], 1);
}

TEST(AesTransforms, MixColumnsKnownVector)
{
    // FIPS-197 / standard MixColumns test column:
    // db 13 53 45 -> 8e 4d a1 bc.
    Block state{};
    state[0] = 0xdb;
    state[1] = 0x13;
    state[2] = 0x53;
    state[3] = 0x45;
    mixColumns(state);
    EXPECT_EQ(state[0], 0x8e);
    EXPECT_EQ(state[1], 0x4d);
    EXPECT_EQ(state[2], 0xa1);
    EXPECT_EQ(state[3], 0xbc);
}

TEST(AesTransforms, MixColumnsInverse)
{
    Rng rng(8);
    for (int trial = 0; trial < 50; ++trial) {
        Block state;
        for (auto &b : state)
            b = static_cast<std::uint8_t>(rng.below(256));
        Block copy = state;
        mixColumns(copy);
        invMixColumns(copy);
        EXPECT_EQ(copy, state);
    }
}

TEST(AesTransforms, SubBytesInverse)
{
    Block state;
    for (unsigned i = 0; i < 16; ++i)
        state[i] = static_cast<std::uint8_t>(i * 17);
    Block copy = state;
    subBytes(copy);
    invSubBytes(copy);
    EXPECT_EQ(copy, state);
}

TEST(AesTransforms, AddRoundKeyIsInvolution)
{
    Block state{};
    Block key{};
    for (unsigned i = 0; i < 16; ++i) {
        state[i] = static_cast<std::uint8_t>(i);
        key[i] = static_cast<std::uint8_t>(0xa0 + i);
    }
    Block copy = state;
    addRoundKey(copy, key);
    EXPECT_NE(copy, state);
    addRoundKey(copy, key);
    EXPECT_EQ(copy, state);
}

TEST(AesDeathTest, UnsupportedKeyLengthIsFatal)
{
    const std::array<std::uint8_t, 5> bad{};
    EXPECT_EXIT(Aes{bad}, testing::ExitedWithCode(1), "key length");
}

} // namespace
} // namespace rcoal::aes
