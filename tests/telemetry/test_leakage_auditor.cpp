/**
 * @file
 * LeakageAuditor tests: the streaming Pearson correlation must agree
 * with the offline batch statistic to floating-point noise, the alert
 * must respect the minimum-sample gate and count its clear->firing
 * transitions, and degenerate inputs must read as zero correlation
 * rather than NaN.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/common/stats.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::telemetry {
namespace {

TEST(TelemetryLeakageAuditor, MatchesOfflinePearsonCorrelation)
{
    MetricRegistry reg;
    LeakageAuditor auditor(reg, LeakageAuditor::Config{});

    // A noisy linear relationship, deterministic LCG noise.
    std::vector<double> xs, ys;
    std::uint64_t state = 99;
    for (int i = 0; i < 500; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const double noise =
            static_cast<double>(state >> 40) / double{1 << 24};
        const double x = 100.0 + (i % 37);
        const double y = 3.0 * x + 40.0 * noise;
        xs.push_back(x);
        ys.push_back(y);
        auditor.observe(x, y);
    }
    const double offline = pearsonCorrelation(xs, ys);
    EXPECT_NEAR(auditor.correlation(), offline, 1e-12);
    EXPECT_EQ(auditor.samples(), xs.size());
    EXPECT_EQ(reg.readValue("rcoal_leakage_observations_total"),
              static_cast<double>(xs.size()));
    EXPECT_NEAR(reg.readValue("rcoal_leakage_correlation"), offline,
                1e-12);
}

TEST(TelemetryLeakageAuditor, AlertRespectsMinimumSamples)
{
    MetricRegistry reg;
    LeakageAuditor::Config cfg;
    cfg.alertThreshold = 0.5;
    cfg.minSamples = 8;
    LeakageAuditor auditor(reg, cfg);

    // Perfectly correlated, but below the sample gate.
    for (int i = 1; i <= 7; ++i) {
        auditor.observe(i, 2.0 * i);
        EXPECT_FALSE(auditor.alerting()) << "n=" << i;
    }
    EXPECT_EQ(reg.readValue("rcoal_leakage_alert"), 0.0);

    auditor.observe(8.0, 16.0); // Crosses the gate; corr == 1.
    EXPECT_TRUE(auditor.alerting());
    EXPECT_EQ(reg.readValue("rcoal_leakage_alert"), 1.0);
    EXPECT_EQ(reg.readValue("rcoal_leakage_alert_transitions_total"),
              1.0);
    EXPECT_EQ(reg.readValue("rcoal_leakage_alert_threshold"), 0.5);

    // Staying in alert is one transition, not one per observation.
    auditor.observe(9.0, 18.0);
    EXPECT_EQ(reg.readValue("rcoal_leakage_alert_transitions_total"),
              1.0);
}

TEST(TelemetryLeakageAuditor, AntiCorrelationAlsoAlerts)
{
    MetricRegistry reg;
    LeakageAuditor::Config cfg;
    cfg.alertThreshold = 0.9;
    cfg.minSamples = 4;
    LeakageAuditor auditor(reg, cfg);
    for (int i = 0; i < 16; ++i)
        auditor.observe(i, -3.0 * i);
    EXPECT_NEAR(auditor.correlation(), -1.0, 1e-12);
    EXPECT_TRUE(auditor.alerting());
}

TEST(TelemetryLeakageAuditor, DegenerateSeriesReadAsZero)
{
    MetricRegistry reg;
    LeakageAuditor auditor(reg, LeakageAuditor::Config{});
    EXPECT_EQ(auditor.correlation(), 0.0); // No samples.

    auditor.observe(5.0, 10.0);
    EXPECT_EQ(auditor.correlation(), 0.0); // One sample.

    // Constant X (every request identical): no variance, no signal.
    for (int i = 0; i < 20; ++i)
        auditor.observe(5.0, 10.0 + i);
    EXPECT_EQ(auditor.correlation(), 0.0);
    EXPECT_FALSE(auditor.alerting());
    EXPECT_FALSE(std::isnan(
        reg.readValue("rcoal_leakage_correlation")));
}

TEST(TelemetryLeakageAuditorDeathTest, RejectsBadConfiguration)
{
    MetricRegistry reg;
    LeakageAuditor::Config bad_threshold;
    bad_threshold.alertThreshold = 1.5;
    EXPECT_DEATH(LeakageAuditor(reg, bad_threshold), "threshold");

    LeakageAuditor::Config bad_samples;
    bad_samples.minSamples = 1;
    EXPECT_DEATH(LeakageAuditor(reg, bad_samples), "samples");
}

} // namespace
} // namespace rcoal::telemetry
