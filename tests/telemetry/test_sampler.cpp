/**
 * @file
 * TelemetrySampler unit tests: sample cadence and the sampleAt
 * contract, collector/track evaluation order, bounded retention via
 * stride doubling, re-anchoring, and detachment semantics.
 */

#include <string>

#include <gtest/gtest.h>

#include "rcoal/telemetry/registry.hpp"
#include "rcoal/telemetry/sampler.hpp"

namespace rcoal::telemetry {
namespace {

TEST(TelemetrySampler, SamplesOnTheConfiguredCadence)
{
    MetricRegistry reg;
    TelemetrySampler sampler(reg, /*interval_cycles=*/100);
    EXPECT_EQ(sampler.nextSampleCycle(), 100u);

    int collected = 0;
    sampler.addCollector([&](Cycle) { ++collected; });
    sampler.track("x", [&] { return static_cast<double>(collected); });

    sampler.sampleAt(100);
    EXPECT_EQ(sampler.nextSampleCycle(), 200u);
    sampler.sampleAt(200);
    EXPECT_EQ(sampler.samplesTaken(), 2u);
    EXPECT_EQ(sampler.pointCount(), 2u);
    EXPECT_EQ(collected, 2);

    // Collectors run before tracks read, so the first point sees the
    // refreshed value.
    const std::string json = sampler.seriesJson();
    EXPECT_NE(json.find("\"x\": [1, 2]"), std::string::npos) << json;
    EXPECT_NE(json.find("\"cycles\": [100, 200]"), std::string::npos)
        << json;
}

TEST(TelemetrySamplerDeathTest, OffScheduleSamplePanics)
{
    MetricRegistry reg;
    TelemetrySampler sampler(reg, 100);
    EXPECT_DEATH(sampler.sampleAt(150), "skip path");
}

TEST(TelemetrySampler, AlignAfterSkipsToTheNextGridPoint)
{
    MetricRegistry reg;
    TelemetrySampler sampler(reg, 100);
    sampler.alignAfter(350);
    EXPECT_EQ(sampler.nextSampleCycle(), 400u);
    sampler.alignAfter(400); // On-grid re-anchor moves past, not onto.
    EXPECT_EQ(sampler.nextSampleCycle(), 500u);
}

TEST(TelemetrySampler, RetentionDoublesStrideInsteadOfGrowing)
{
    MetricRegistry reg;
    TelemetrySampler sampler(reg, /*interval_cycles=*/10,
                             /*max_points=*/4);
    sampler.track("v", [] { return 1.0; });
    Cycle now = 0;
    for (int i = 0; i < 64; ++i) {
        now = sampler.nextSampleCycle();
        sampler.sampleAt(now);
    }
    EXPECT_EQ(sampler.samplesTaken(), 64u);
    EXPECT_LT(sampler.pointCount(), 4u * 2u);
    // Thinning keeps the series parallel to the cycle axis.
    const std::string json = sampler.seriesJson();
    EXPECT_NE(json.find("\"stride\""), std::string::npos);
}

TEST(TelemetrySampler, CollectRefreshesWithoutRecordingAPoint)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("g", "help");
    TelemetrySampler sampler(reg, 100);
    double live = 7.5;
    sampler.addCollector([&](Cycle) { g.set(live); });

    sampler.collect(42);
    EXPECT_EQ(g.value(), 7.5);
    EXPECT_EQ(sampler.pointCount(), 0u);
    EXPECT_EQ(sampler.samplesTaken(), 0u);
}

TEST(TelemetrySampler, DetachSourcesKeepsSeriesAndValues)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("g", "help");
    TelemetrySampler sampler(reg, 100);
    double live = 1.0;
    sampler.addCollector([&](Cycle) { g.set(live); });
    sampler.track("g", [&] { return live; });

    sampler.sampleAt(100);
    live = 2.0;
    sampler.sampleAt(200);

    const std::string before = sampler.seriesJson();
    sampler.detachSources();

    // The run-local callbacks are gone, but history and registry
    // values survive, and no sample is due anymore.
    EXPECT_EQ(sampler.seriesJson(), before);
    EXPECT_EQ(g.value(), 2.0);
    EXPECT_EQ(sampler.nextSampleCycle(), kInvalidCycle);
    sampler.collect(300); // No collectors left: a no-op, not a crash.
}

} // namespace
} // namespace rcoal::telemetry
