/**
 * @file
 * Integration tests of the serve-path telemetry: the instrument set a
 * telemetry-attached serve run exposes, agreement between registry
 * values and the serve report, the leakage auditor's BASE-vs-RCoal
 * separation on live traffic, and re-export of trace-sink and DRAM
 * protocol-checker counters through the registry.
 */

#include <array>
#include <string>

#include <gtest/gtest.h>

#include "rcoal/common/logging.hpp"
#include "rcoal/common/rng.hpp"
#include "rcoal/serve/server.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/prometheus.hpp"
#include "rcoal/telemetry/registry.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "rcoal/trace/dram_checker.hpp"
#include "rcoal/trace/tracer.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::telemetry {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

struct TelemetrizedRun {
    MetricRegistry registry;
    serve::ServeReport report;
    double correlation = 0.0;
    bool alerting = false;
};

/** Probe-only serve run under @p policy with telemetry attached. */
TelemetrizedRun
run(const core::CoalescingPolicy &policy, unsigned probes,
    trace::Tracer *tracer = nullptr)
{
    sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    gpu.numSms = 4;
    gpu.seed = 42;
    gpu.policy = policy;

    serve::ServeConfig cfg;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.batchTimeoutCycles = 2000;
    cfg.smsPerKernel = 2;

    serve::WorkloadSpec spec;
    spec.probeSamples = probes;
    spec.probeLines = 32;
    spec.probeSeed = 7;
    spec.probeThinkCycles = 100;
    spec.backgroundMeanGapCycles = 0.0; // Probe-only: clean channel.

    TelemetrizedRun out;
    TelemetrySampler sampler(out.registry, /*interval_cycles=*/1000);
    LeakageAuditor auditor(out.registry, LeakageAuditor::Config{});
    const serve::ServeTelemetry telemetry{&sampler, &auditor};
    const serve::EncryptionServer server(gpu, cfg, kKey);
    out.report = server.run(spec, tracer, &telemetry);
    out.correlation = auditor.correlation();
    out.alerting = auditor.alerting();
    return out;
}

TEST(TelemetryServeIntegration, RegistryAgreesWithTheServeReport)
{
    const TelemetrizedRun r =
        run(core::CoalescingPolicy::baseline(), 6);
    const MetricRegistry &reg = r.registry;

    EXPECT_EQ(reg.readValue("rcoal_serve_admitted_total"),
              static_cast<double>(r.report.admitted));
    EXPECT_EQ(reg.readValue("rcoal_serve_rejected_total"),
              static_cast<double>(r.report.rejected));
    EXPECT_EQ(reg.readValue("rcoal_serve_completed_total"),
              static_cast<double>(r.report.completed.size()));
    EXPECT_EQ(reg.readValue("rcoal_serve_kernels_launched_total"),
              static_cast<double>(r.report.kernelsLaunched));
    EXPECT_EQ(reg.readValue("rcoal_serve_probe_completed_total"), 6.0);
    EXPECT_EQ(reg.readValue("rcoal_sim_cycles_total"),
              static_cast<double>(r.report.totalCycles));
    EXPECT_EQ(reg.readValue("rcoal_leakage_observations_total"), 6.0);

    // The latency histograms carry every completion with exact
    // count/sum (only quantiles are approximated).
    const LogHistogram *all = reg.findHistogram(
        "rcoal_serve_request_latency_cycles", {{"scope", "all"}});
    ASSERT_NE(all, nullptr);
    EXPECT_EQ(all->count(), r.report.completed.size());
    const LogHistogram *probe = reg.findHistogram(
        "rcoal_serve_request_latency_cycles", {{"scope", "probe"}});
    ASSERT_NE(probe, nullptr);
    EXPECT_EQ(probe->count(), 6u);
    EXPECT_EQ(static_cast<double>(probe->maxValue()),
              r.report.probeLatency.max);

    // Machine-side families the collector must have populated.
    EXPECT_GT(reg.readValue("rcoal_kernels_retired_total"), 0.0);
    EXPECT_GT(reg.readValue("rcoal_coalesced_accesses_total"), 0.0);
    ASSERT_NE(reg.findCounter("rcoal_dram_row_hits_total",
                              {{"partition", "0"}, {"bank", "0"}}),
              nullptr);
    // The violations family is checker-gated; no checker, no metric.
    EXPECT_EQ(reg.findCounter("rcoal_dram_protocol_violations_total",
                              {{"partition", "0"}}),
              nullptr);
}

TEST(TelemetryServeIntegration, ProtocolViolationCountersWhenChecking)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 2;
    sim::GpuMachine machine(cfg);
    machine.enableDramChecking(
        trace::DramProtocolChecker::Mode::Collect);

    MetricRegistry registry;
    TelemetrySampler sampler(registry, 1000);
    machine.setTelemetry(&sampler);

    Rng rng = Rng::stream(7, 0);
    const auto plaintext = workloads::randomPlaintext(32, rng);
    const workloads::AesGpuKernel kernel(plaintext, kKey, cfg.warpSize);
    const auto id = machine.launchStream(kernel, sim::SmRange{0, 2},
                                         /*rng_stream_index=*/1);
    machine.runUntilDone(id);
    (void)machine.take(id);
    sampler.collect(machine.now());
    sampler.detachSources();
    machine.setTelemetry(nullptr);

    ASSERT_EQ(machine.dramCheckers().size(),
              static_cast<std::size_t>(cfg.numPartitions));
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        const Counter *violations = registry.findCounter(
            "rcoal_dram_protocol_violations_total",
            {{"partition", strprintf("%u", p)}});
        ASSERT_NE(violations, nullptr) << "partition " << p;
        EXPECT_EQ(violations->value(),
                  machine.dramCheckers()[p]->violations().size())
            << "partition " << p;
    }
}

TEST(TelemetryServeIntegration, AuditorSeparatesBaseFromRcoal)
{
    // The acceptance demo in miniature: on a clean probe-only channel
    // the auditor must fire under BASE and stay quiet under RSS+RTS.
    const TelemetrizedRun base =
        run(core::CoalescingPolicy::baseline(), 24);
    EXPECT_GT(base.correlation, 0.6);
    EXPECT_TRUE(base.alerting);
    EXPECT_EQ(base.registry.readValue("rcoal_leakage_alert"), 1.0);

    const TelemetrizedRun rcoal =
        run(core::CoalescingPolicy::rss(8, true), 24);
    EXPECT_LT(std::abs(rcoal.correlation), 0.35);
    EXPECT_FALSE(rcoal.alerting);
    EXPECT_EQ(rcoal.registry.readValue("rcoal_leakage_alert"), 0.0);
}

TEST(TelemetryServeIntegration, TraceSinkCountersAreReExported)
{
    trace::Tracer tracer(1 << 12);
    const TelemetrizedRun r =
        run(core::CoalescingPolicy::baseline(), 4, &tracer);

    // One recorded/dropped counter pair per sink, labelled by sink
    // name, and consistent with the sink's own accounting.
    ASSERT_FALSE(tracer.sinks().empty());
    for (const auto &sink : tracer.sinks()) {
        const Counter *recorded = r.registry.findCounter(
            "rcoal_trace_recorded_total", {{"sink", sink->name()}});
        ASSERT_NE(recorded, nullptr) << sink->name();
        EXPECT_EQ(recorded->value(), sink->totalRecorded())
            << sink->name();
        const Counter *dropped = r.registry.findCounter(
            "rcoal_trace_dropped_total", {{"sink", sink->name()}});
        ASSERT_NE(dropped, nullptr) << sink->name();
        EXPECT_EQ(dropped->value(), sink->dropped())
            << sink->name();
    }

    const auto lint = lintPrometheus(renderPrometheus(r.registry));
    EXPECT_FALSE(lint.has_value()) << *lint;
}

} // namespace
} // namespace rcoal::telemetry
