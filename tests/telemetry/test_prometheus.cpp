/**
 * @file
 * Prometheus exposition round-trip tests: render -> lint clean ->
 * parse -> values match the registry, plus rejection of malformed
 * documents and the semantic checks the linter adds on top of the
 * parser (TYPE coverage, histogram series completeness, duplicate
 * detection).
 */

#include <string>

#include <gtest/gtest.h>

#include "rcoal/telemetry/prometheus.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::telemetry {
namespace {

MetricRegistry
populatedRegistry()
{
    MetricRegistry reg;
    reg.counter("rcoal_requests_total", "Requests served").inc(42);
    reg.gauge("rcoal_queue_depth", "Waiting requests").set(3.0);
    reg.gauge("rcoal_leakage_correlation", "Leakage statistic",
              {{"policy", "BASE"}})
        .set(0.973);
    LogHistogram &h =
        reg.histogram("rcoal_latency_cycles", "Request latency");
    for (std::uint64_t v : {5u, 5u, 900u, 40'000u})
        h.observe(v);
    return reg;
}

TEST(TelemetryPrometheus, RenderLintParseRoundTrip)
{
    const MetricRegistry reg = populatedRegistry();
    const std::string text = renderPrometheus(reg);

    const auto lint = lintPrometheus(text);
    EXPECT_FALSE(lint.has_value()) << *lint;

    std::string error;
    const auto doc = parsePrometheus(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;

    EXPECT_EQ(doc->type.at("rcoal_requests_total"), "counter");
    EXPECT_EQ(doc->type.at("rcoal_queue_depth"), "gauge");
    EXPECT_EQ(doc->type.at("rcoal_latency_cycles"), "histogram");
    EXPECT_EQ(doc->help.at("rcoal_requests_total"), "Requests served");

    double requests = -1.0, correlation = -2.0, hist_count = -1.0;
    double inf_bucket = -1.0;
    for (const PromSample &s : doc->samples) {
        if (s.name == "rcoal_requests_total")
            requests = s.value;
        if (s.name == "rcoal_leakage_correlation" &&
            s.labels.at("policy") == "BASE") {
            correlation = s.value;
        }
        if (s.name == "rcoal_latency_cycles_count")
            hist_count = s.value;
        if (s.name == "rcoal_latency_cycles_bucket" &&
            s.labels.at("le") == "+Inf") {
            inf_bucket = s.value;
        }
    }
    EXPECT_EQ(requests, 42.0);
    EXPECT_EQ(correlation, 0.973);
    EXPECT_EQ(hist_count, 4.0);
    EXPECT_EQ(inf_bucket, 4.0);
}

TEST(TelemetryPrometheus, RenderingIsDeterministic)
{
    const std::string a = renderPrometheus(populatedRegistry());
    const std::string b = renderPrometheus(populatedRegistry());
    EXPECT_EQ(a, b);
}

TEST(TelemetryPrometheus, FormatMetricValueRoundTrips)
{
    EXPECT_EQ(formatMetricValue(42.0), "42");
    EXPECT_EQ(formatMetricValue(0.0), "0");
    const std::string text = formatMetricValue(0.1);
    EXPECT_EQ(std::stod(text), 0.1); // %.17g round-trips exactly.
}

TEST(TelemetryPrometheus, ParserRejectsMalformedDocuments)
{
    std::string error;
    // Metric names cannot start with a digit.
    EXPECT_FALSE(parsePrometheus("9bad_name 1\n", &error).has_value());
    EXPECT_FALSE(error.empty());
    // Unclosed label set.
    EXPECT_FALSE(
        parsePrometheus("name{l=\"v\" 1\n", &error).has_value());
    // Trailing garbage after the value.
    EXPECT_FALSE(
        parsePrometheus("name 1 trailing junk here\n", &error)
            .has_value());
    // Non-numeric value.
    EXPECT_FALSE(parsePrometheus("name fast\n", &error).has_value());
}

TEST(TelemetryPrometheus, LintFlagsSemanticProblems)
{
    // Parses fine but has no TYPE declaration.
    EXPECT_TRUE(lintPrometheus("orphan_total 3\n").has_value());

    // Duplicate sample (same name and labels twice).
    const std::string dup = "# TYPE d gauge\nd 1\nd 2\n";
    EXPECT_TRUE(lintPrometheus(dup).has_value());

    // Histogram without its +Inf bucket / _count / _sum.
    const std::string partial = "# TYPE h histogram\n"
                                "h_bucket{le=\"10\"} 1\n";
    EXPECT_TRUE(lintPrometheus(partial).has_value());

    // Negative counter.
    const std::string negative = "# TYPE c counter\nc -1\n";
    EXPECT_TRUE(lintPrometheus(negative).has_value());
}

} // namespace
} // namespace rcoal::telemetry
