/**
 * @file
 * The telemetry determinism contract: exposition text and recorded
 * time series are byte-identical whether cycle skipping is on or off,
 * across reruns, and regardless of what sibling scenarios run on
 * other threads.  These suites are named Telemetry* so CI's TSan
 * filter picks them up alongside the serve suites.
 */

#include <array>
#include <string>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "rcoal/common/rng.hpp"
#include "rcoal/serve/server.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/telemetry/leakage_auditor.hpp"
#include "rcoal/telemetry/prometheus.hpp"
#include "rcoal/telemetry/registry.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::telemetry {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

/** Exposition + series of one sampled single-kernel machine run. */
std::pair<std::string, std::string>
machineRun(bool skipping)
{
    sim::GpuConfig cfg = sim::GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.policy = core::CoalescingPolicy::rss(4, true);
    cfg.cycleSkipping = skipping;

    MetricRegistry registry;
    TelemetrySampler sampler(registry, /*interval_cycles=*/250);
    sim::GpuMachine machine(cfg);
    machine.setTelemetry(&sampler);

    Rng rng = Rng::stream(7, 0);
    const auto plaintext = workloads::randomPlaintext(64, rng);
    const workloads::AesGpuKernel kernel(plaintext, kKey, cfg.warpSize);
    const auto id = machine.launchStream(kernel, sim::SmRange{0, 4},
                                         /*rng_stream_index=*/1);
    machine.runUntilDone(id);
    (void)machine.take(id);

    sampler.collect(machine.now());
    sampler.detachSources();
    machine.setTelemetry(nullptr);
    EXPECT_GT(sampler.samplesTaken(), 0u);
    return {renderPrometheus(registry), sampler.seriesJson()};
}

TEST(TelemetryDeterminism, MachineExpositionIdenticalAcrossSkipModes)
{
    const auto stepped = machineRun(false);
    const auto skipped = machineRun(true);
    EXPECT_EQ(stepped.first, skipped.first);
    EXPECT_EQ(stepped.second, skipped.second);
    // And the shared exposition is well-formed.
    const auto lint = lintPrometheus(skipped.first);
    EXPECT_FALSE(lint.has_value()) << *lint;
}

/** Exposition + series of one telemetry-attached serve run. */
std::pair<std::string, std::string>
serveRun(bool skipping, std::uint64_t probe_seed = 7)
{
    sim::GpuConfig gpu = sim::GpuConfig::paperBaseline();
    gpu.numSms = 4;
    gpu.seed = 42;
    gpu.cycleSkipping = skipping;

    serve::ServeConfig cfg;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.batchTimeoutCycles = 2000;
    cfg.smsPerKernel = 2;

    serve::WorkloadSpec spec;
    spec.probeSamples = 6;
    spec.probeLines = 32;
    spec.probeSeed = probe_seed;
    spec.probeThinkCycles = 400;
    spec.backgroundMeanGapCycles = 6000.0;
    spec.backgroundLineChoices = {32};
    spec.backgroundSeed = 1234;

    MetricRegistry registry;
    TelemetrySampler sampler(registry, /*interval_cycles=*/1000);
    LeakageAuditor auditor(registry, LeakageAuditor::Config{});
    const serve::ServeTelemetry telemetry{&sampler, &auditor};

    const serve::EncryptionServer server(gpu, cfg, kKey);
    (void)server.run(spec, /*tracer=*/nullptr, &telemetry);
    return {renderPrometheus(registry), sampler.seriesJson()};
}

TEST(TelemetryDeterminism, ServeExpositionIdenticalAcrossSkipModes)
{
    const auto stepped = serveRun(false);
    const auto skipped = serveRun(true);
    EXPECT_EQ(stepped.first, skipped.first);
    EXPECT_EQ(stepped.second, skipped.second);
    const auto lint = lintPrometheus(skipped.first);
    EXPECT_FALSE(lint.has_value()) << *lint;
}

TEST(TelemetryDeterminism, RerunsAreByteIdentical)
{
    const auto first = serveRun(true);
    const auto second = serveRun(true);
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
}

TEST(TelemetryDeterminism, ExpositionIndependentOfSiblingThreads)
{
    // Per-scenario registries are the thread-independence mechanism:
    // a scenario's exposition must not change when other scenarios run
    // concurrently (the bench engine's RCOAL_THREADS axis).
    const auto alone = serveRun(true, 7);

    std::pair<std::string, std::string> crowded;
    std::pair<std::string, std::string> sibling;
    std::thread a([&] { crowded = serveRun(true, 7); });
    std::thread b([&] { sibling = serveRun(true, 97); });
    a.join();
    b.join();

    EXPECT_EQ(alone.first, crowded.first);
    EXPECT_EQ(alone.second, crowded.second);
    // The sibling probed with different plaintexts, so it really was
    // distinct work, not a cached copy.
    EXPECT_NE(alone.first, sibling.first);
}

} // namespace
} // namespace rcoal::telemetry
