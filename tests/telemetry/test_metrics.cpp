/**
 * @file
 * Unit tests for the telemetry instruments (Counter, Gauge,
 * LogHistogram) and the MetricRegistry: monotonicity enforcement,
 * log-linear bucket geometry and its quantile error bound, and the
 * registration contract (idempotent lookup, fatal kind mismatch,
 * stable exposition order).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/telemetry/metric.hpp"
#include "rcoal/telemetry/registry.hpp"

namespace rcoal::telemetry {
namespace {

TEST(TelemetryCounter, IncAndCumulativeSetAgree)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.set(42); // Equal refresh is allowed (no progress between samples).
    c.set(100);
    EXPECT_EQ(c.value(), 100u);
}

TEST(TelemetryCounterDeathTest, BackwardsSetPanics)
{
    Counter c;
    c.set(10);
    EXPECT_DEATH(c.set(9), "backwards");
}

TEST(TelemetryGauge, HoldsLastValueIncludingNegative)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-0.25);
    EXPECT_EQ(g.value(), -0.25);
}

TEST(TelemetryLogHistogram, SmallValuesGetExactBuckets)
{
    LogHistogram h;
    for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(h.bucketIndex(v), v);
        EXPECT_EQ(h.bucketUpperBound(v), v);
    }
    for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v)
        h.observe(v);
    // Every quantile of an exact-bucket population is exact.
    EXPECT_EQ(h.quantileValue(0.0), 0u);
    EXPECT_EQ(h.quantileValue(0.5), 7u);
    EXPECT_EQ(h.quantileValue(1.0), 15u);
}

TEST(TelemetryLogHistogram, TracksCountSumMinMaxExactly)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    const std::vector<std::uint64_t> values = {3, 70'000, 12, 999, 3};
    std::uint64_t sum = 0;
    for (std::uint64_t v : values) {
        h.observe(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), values.size());
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.minValue(), 3u);
    EXPECT_EQ(h.maxValue(), 70'000u);
    EXPECT_DOUBLE_EQ(h.mean(),
                     static_cast<double>(sum) / values.size());
}

TEST(TelemetryLogHistogram, QuantileRelativeErrorIsBounded)
{
    // Deterministic LCG spread over several powers of two; the HDR
    // bucketing promises <= 1/16 relative error against the true
    // nearest-rank order statistic.
    std::vector<std::uint64_t> values;
    std::uint64_t x = 12345;
    LogHistogram h;
    for (int i = 0; i < 20'000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t v = (x >> 33) % 1'000'000;
        values.push_back(v);
        h.observe(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {0.5, 0.95, 0.99}) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(p * static_cast<double>(values.size())));
        const double exact =
            static_cast<double>(values[rank == 0 ? 0 : rank - 1]);
        const double approx = h.quantile(p);
        EXPECT_LE(std::fabs(approx - exact), exact / 16.0 + 1.0)
            << "p=" << p;
    }
    EXPECT_EQ(h.quantileValue(0.0), h.minValue());
    EXPECT_EQ(h.quantileValue(1.0), h.maxValue());
}

TEST(TelemetryLogHistogram, OverflowClampsIntoFinalBucket)
{
    LogHistogram h(/*value_bits=*/20);
    const std::uint64_t huge = std::uint64_t{1} << 40;
    h.observe(huge);
    EXPECT_EQ(h.bucketIndex(huge), h.bucketCount() - 1);
    EXPECT_EQ(h.maxValue(), huge); // min/max/sum stay exact.
    EXPECT_EQ(h.sum(), huge);
}

TEST(TelemetryLogHistogram, ToHistogramPreservesTotalCount)
{
    LogHistogram h;
    for (std::uint64_t v : {1u, 5u, 300u, 70'000u})
        h.observe(v);
    const Histogram dense = h.toHistogram();
    EXPECT_EQ(dense.totalCount(), h.count());
}

TEST(TelemetryRegistry, ReRegistrationReturnsTheSameInstrument)
{
    MetricRegistry reg;
    Counter &a = reg.counter("rcoal_test_total", "help");
    a.inc(5);
    Counter &b = reg.counter("rcoal_test_total", "help");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 5u);
    EXPECT_EQ(reg.instrumentCount(), 1u);
}

TEST(TelemetryRegistry, LabelsDistinguishCellsWithinAFamily)
{
    MetricRegistry reg;
    Counter &base = reg.counter("rcoal_xbar_packets_total", "pkts",
                                {{"xbar", "req"}});
    Counter &resp = reg.counter("rcoal_xbar_packets_total", "pkts",
                                {{"xbar", "resp"}});
    EXPECT_NE(&base, &resp);
    base.inc(3);
    EXPECT_EQ(reg.findCounter("rcoal_xbar_packets_total",
                              {{"xbar", "req"}})
                  ->value(),
              3u);
    EXPECT_EQ(reg.findCounter("rcoal_xbar_packets_total",
                              {{"xbar", "resp"}})
                  ->value(),
              0u);
    EXPECT_EQ(reg.findCounter("rcoal_xbar_packets_total",
                              {{"xbar", "nope"}}),
              nullptr);
    EXPECT_EQ(reg.families().size(), 1u);
    EXPECT_EQ(reg.instrumentCount(), 2u);
}

TEST(TelemetryRegistry, FamiliesKeepRegistrationOrder)
{
    MetricRegistry reg;
    reg.gauge("z_last", "z");
    reg.counter("a_first_total", "a");
    reg.histogram("m_middle", "m");
    ASSERT_EQ(reg.families().size(), 3u);
    EXPECT_EQ(reg.families()[0].name, "z_last");
    EXPECT_EQ(reg.families()[1].name, "a_first_total");
    EXPECT_EQ(reg.families()[2].name, "m_middle");
}

TEST(TelemetryRegistryDeathTest, KindMismatchOnSameNamePanics)
{
    MetricRegistry reg;
    reg.counter("rcoal_thing_total", "help");
    EXPECT_DEATH((void)reg.gauge("rcoal_thing_total", "help"), "");
}

TEST(TelemetryRegistry, ReadValueSeesCountersAndGauges)
{
    MetricRegistry reg;
    reg.counter("c_total", "c").inc(7);
    reg.gauge("g", "g").set(2.5);
    EXPECT_EQ(reg.readValue("c_total"), 7.0);
    EXPECT_EQ(reg.readValue("g"), 2.5);
}

TEST(TelemetryRegistry, RenderLabelsEscapesQuotesAndBackslashes)
{
    const std::string text = MetricRegistry::renderLabels(
        {{"k", "a\"b\\c\nd"}});
    EXPECT_EQ(text, "{k=\"a\\\"b\\\\c\\nd\"}");
    EXPECT_EQ(MetricRegistry::renderLabels({}), "");
}

} // namespace
} // namespace rcoal::telemetry
