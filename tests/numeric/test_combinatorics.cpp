/**
 * @file
 * Unit tests for exact combinatorics.
 */

#include <gtest/gtest.h>

#include <array>

#include "rcoal/numeric/combinatorics.hpp"

namespace rcoal::numeric {
namespace {

TEST(Factorial, SmallValues)
{
    EXPECT_EQ(factorial(0).toU64(), 1u);
    EXPECT_EQ(factorial(1).toU64(), 1u);
    EXPECT_EQ(factorial(5).toU64(), 120u);
    EXPECT_EQ(factorial(12).toU64(), 479001600u);
}

TEST(Factorial, ThirtyTwo)
{
    EXPECT_EQ(factorial(32).toString(),
              "263130836933693530167218012160000000");
}

TEST(Binomial, KnownValues)
{
    EXPECT_EQ(binomial(0, 0).toU64(), 1u);
    EXPECT_EQ(binomial(5, 2).toU64(), 10u);
    EXPECT_EQ(binomial(32, 16).toU64(), 601080390u);
    EXPECT_EQ(binomial(47, 15).toU64(), 751616304549u);
    EXPECT_TRUE(binomial(3, 5).isZero());
}

TEST(Binomial, Symmetry)
{
    for (unsigned n = 1; n <= 20; ++n) {
        for (unsigned k = 0; k <= n; ++k)
            EXPECT_EQ(binomial(n, k), binomial(n, n - k));
    }
}

TEST(Binomial, PascalIdentity)
{
    for (unsigned n = 1; n <= 25; ++n) {
        for (unsigned k = 1; k <= n; ++k) {
            EXPECT_EQ(binomial(n, k),
                      binomial(n - 1, k) + binomial(n - 1, k - 1));
        }
    }
}

TEST(Binomial, RowSumIsPowerOfTwo)
{
    for (unsigned n = 0; n <= 40; ++n) {
        BigUInt sum;
        for (unsigned k = 0; k <= n; ++k)
            sum += binomial(n, k);
        EXPECT_EQ(sum, BigUInt(2).pow(n));
    }
}

TEST(FallingFactorial, Basics)
{
    EXPECT_EQ(fallingFactorial(5, 0).toU64(), 1u);
    EXPECT_EQ(fallingFactorial(5, 2).toU64(), 20u);
    EXPECT_EQ(fallingFactorial(5, 5).toU64(), 120u);
    EXPECT_EQ(fallingFactorial(16, 16), factorial(16));
}

TEST(FallingFactorial, RelationToBinomial)
{
    // n!/(n-k)! = C(n,k) * k!
    for (unsigned n = 1; n <= 16; ++n) {
        for (unsigned k = 0; k <= n; ++k) {
            EXPECT_EQ(fallingFactorial(n, k),
                      binomial(n, k) * factorial(k));
        }
    }
}

TEST(Multinomial, KnownValues)
{
    const std::array<unsigned, 3> counts{2, 1, 1};
    EXPECT_EQ(multinomial(counts).toU64(), 12u); // 4!/(2!1!1!)
    const std::array<unsigned, 2> half{16, 16};
    EXPECT_EQ(multinomial(half), binomial(32, 16));
}

TEST(Stirling2, BaseCases)
{
    EXPECT_EQ(stirling2(0, 0).toU64(), 1u);
    EXPECT_TRUE(stirling2(1, 0).isZero());
    EXPECT_TRUE(stirling2(0, 1).isZero());
    EXPECT_EQ(stirling2(1, 1).toU64(), 1u);
    EXPECT_TRUE(stirling2(3, 5).isZero());
}

TEST(Stirling2, KnownSmallValues)
{
    EXPECT_EQ(stirling2(4, 2).toU64(), 7u);
    EXPECT_EQ(stirling2(5, 3).toU64(), 25u);
    EXPECT_EQ(stirling2(6, 3).toU64(), 90u);
    EXPECT_EQ(stirling2(10, 5).toU64(), 42525u);
}

TEST(Stirling2, NChooseOneAndN)
{
    for (unsigned n = 1; n <= 32; ++n) {
        EXPECT_EQ(stirling2(n, 1).toU64(), 1u);
        EXPECT_EQ(stirling2(n, n).toU64(), 1u);
        if (n >= 2) {
            // S(n,2) = 2^(n-1) - 1
            EXPECT_EQ(stirling2(n, 2), BigUInt(2).pow(n - 1) - BigUInt(1));
            // S(n, n-1) = C(n, 2)
            EXPECT_EQ(stirling2(n, n - 1), binomial(n, 2));
        }
    }
}

TEST(Stirling2, SurjectionIdentity)
{
    // k^n = sum_i C(k,i) * i! * S(n,i): classifying functions by image
    // size. Check for a few (n, k).
    for (unsigned n : {5u, 8u, 12u}) {
        for (unsigned k : {2u, 3u, 6u}) {
            BigUInt total;
            for (unsigned i = 1; i <= k; ++i) {
                total +=
                    binomial(k, i) * factorial(i) * stirling2(n, i);
            }
            EXPECT_EQ(total, BigUInt(k).pow(n))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(Bell, KnownSequence)
{
    const std::array<std::uint64_t, 9> expected{1,  1,  2,   5,   15,
                                                52, 203, 877, 4140};
    for (unsigned n = 0; n < expected.size(); ++n)
        EXPECT_EQ(bell(n).toU64(), expected[n]) << "n=" << n;
}

TEST(Compositions, CountMatchesBinomial)
{
    EXPECT_EQ(compositionsCount(32, 1).toU64(), 1u);
    EXPECT_EQ(compositionsCount(32, 2).toU64(), 31u);
    EXPECT_EQ(compositionsCount(32, 32).toU64(), 1u);
    EXPECT_EQ(compositionsCount(4, 2).toU64(), 3u); // 1+3, 2+2, 3+1
    EXPECT_TRUE(compositionsCount(2, 5).isZero());
    EXPECT_EQ(compositionsCount(0, 0).toU64(), 1u);
    EXPECT_TRUE(compositionsCount(3, 0).isZero());
}

} // namespace
} // namespace rcoal::numeric
