/**
 * @file
 * Unit tests for partition enumeration and multiplicity weights.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>

#include "rcoal/numeric/combinatorics.hpp"
#include "rcoal/numeric/partitions.hpp"

namespace rcoal::numeric {
namespace {

TEST(Partitions, CountMatchesPartitionFunction)
{
    // p(n) for n = 0..10: 1,1,2,3,5,7,11,15,22,30,42.
    const std::array<std::uint64_t, 11> p{1, 1, 2, 3, 5, 7, 11, 15, 22,
                                          30, 42};
    for (unsigned n = 0; n < p.size(); ++n)
        EXPECT_EQ(countPartitions(n, n, n), p[n]) << "n=" << n;
}

TEST(Partitions, PartsAreNonIncreasingAndSumCorrectly)
{
    forEachPartition(12, 5, 12, [](const Partition &part) {
        unsigned sum = 0;
        for (std::size_t i = 0; i < part.size(); ++i) {
            sum += part[i];
            EXPECT_GE(part[i], 1u);
            if (i > 0)
                EXPECT_LE(part[i], part[i - 1]);
        }
        EXPECT_EQ(sum, 12u);
        EXPECT_LE(part.size(), 5u);
    });
}

TEST(Partitions, MaxPartRespected)
{
    forEachPartition(10, 10, 3, [](const Partition &part) {
        for (unsigned p : part)
            EXPECT_LE(p, 3u);
    });
}

TEST(Partitions, NoDuplicates)
{
    std::set<Partition> seen;
    forEachPartition(20, 20, 20, [&](const Partition &part) {
        EXPECT_TRUE(seen.insert(part).second);
    });
    EXPECT_EQ(seen.size(), 627u); // p(20)
}

TEST(Partitions, ExactPartsFiltering)
{
    // Partitions of 8 into exactly 3 parts: 6+1+1, 5+2+1, 4+3+1,
    // 4+2+2, 3+3+2 -> 5 of them.
    std::uint64_t count = 0;
    forEachPartitionExact(8, 3, 8, [&](const Partition &part) {
        EXPECT_EQ(part.size(), 3u);
        ++count;
    });
    EXPECT_EQ(count, 5u);
}

TEST(Partitions, ZeroYieldsEmptyPartition)
{
    std::uint64_t count = 0;
    forEachPartition(0, 4, 4, [&](const Partition &part) {
        EXPECT_TRUE(part.empty());
        ++count;
    });
    EXPECT_EQ(count, 1u);
}

TEST(CompositionsOfPartition, MatchesDirectEnumeration)
{
    // Partition {2,1,1}: orderings of (2,1,1) over 3 slots = 3.
    EXPECT_EQ(compositionsOfPartition({2, 1, 1}).toU64(), 3u);
    // {3,2,1}: all distinct -> 3! = 6.
    EXPECT_EQ(compositionsOfPartition({3, 2, 1}).toU64(), 6u);
    // {2,2,2}: all equal -> 1.
    EXPECT_EQ(compositionsOfPartition({2, 2, 2}).toU64(), 1u);
}

TEST(CompositionsOfPartition, SumOverPartitionsEqualsCompositionCount)
{
    // Sum over partitions of n into exactly k parts of the number of
    // orderings equals C(n-1, k-1).
    for (unsigned n : {8u, 12u, 16u}) {
        for (unsigned k : {2u, 3u, 5u}) {
            BigUInt total;
            forEachPartitionExact(n, k, n, [&](const Partition &part) {
                total += compositionsOfPartition(part);
            });
            EXPECT_EQ(total, compositionsCount(n, k))
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(VectorsOfPartition, SmallCases)
{
    // Partition {2,1} over 3 slots: choose which slot holds 2, which
    // holds 1, one empty: 3 * 2 = 6.
    EXPECT_EQ(vectorsOfPartition({2, 1}, 3).toU64(), 6u);
    // Partition {1,1} over 3 slots: choose 2 of 3 slots: 3.
    EXPECT_EQ(vectorsOfPartition({1, 1}, 3).toU64(), 3u);
    // Empty partition: exactly one all-zero vector.
    EXPECT_EQ(vectorsOfPartition({}, 4).toU64(), 1u);
}

TEST(VectorsOfPartition, TotalFrequencyVectorsMatchStarsAndBars)
{
    // Sum over partitions of n into <= r parts of the vector count
    // equals C(n + r - 1, r - 1) (weak compositions of n into r parts).
    const unsigned n = 8;
    const unsigned r = 4;
    BigUInt total;
    forEachPartition(n, r, n, [&](const Partition &part) {
        total += vectorsOfPartition(part, r);
    });
    EXPECT_EQ(total, binomial(n + r - 1, r - 1));
}

TEST(ThreadAssignments, MultinomialConsistency)
{
    EXPECT_EQ(threadAssignmentsOfPartition({2, 1, 1}).toU64(), 12u);
    EXPECT_EQ(threadAssignmentsOfPartition({4}).toU64(), 1u);
    EXPECT_EQ(threadAssignmentsOfPartition({1, 1, 1, 1}).toU64(), 24u);
}

TEST(ThreadAssignments, TotalAssignmentsEqualRToTheN)
{
    // Sum over frequency partitions of (vectors * assignments) counts
    // every function from n threads to r blocks exactly once.
    const unsigned n = 10;
    const unsigned r = 4;
    BigUInt total;
    forEachPartition(n, r, n, [&](const Partition &part) {
        total += vectorsOfPartition(part, r) *
                 threadAssignmentsOfPartition(part);
    });
    EXPECT_EQ(total, BigUInt(r).pow(n));
}

} // namespace
} // namespace rcoal::numeric
