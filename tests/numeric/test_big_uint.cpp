/**
 * @file
 * Unit tests for BigUInt.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "rcoal/numeric/big_uint.hpp"

namespace rcoal::numeric {
namespace {

TEST(BigUInt, ZeroProperties)
{
    BigUInt zero;
    EXPECT_TRUE(zero.isZero());
    EXPECT_EQ(zero.bitLength(), 0u);
    EXPECT_EQ(zero.toString(), "0");
    EXPECT_EQ(zero.toU64(), 0u);
    EXPECT_EQ(zero, BigUInt(0));
}

TEST(BigUInt, ConstructFrom64Bit)
{
    const BigUInt v(0x1234'5678'9abc'def0ull);
    EXPECT_EQ(v.toU64(), 0x1234'5678'9abc'def0ull);
    EXPECT_EQ(v.bitLength(), 61u);
}

TEST(BigUInt, DecimalRoundTrip)
{
    const std::string digits = "123456789012345678901234567890123456789";
    EXPECT_EQ(BigUInt::fromDecimal(digits).toString(), digits);
    EXPECT_EQ(BigUInt::fromDecimal("0").toString(), "0");
    EXPECT_EQ(BigUInt::fromDecimal("00042").toString(), "42");
}

TEST(BigUInt, AdditionWithCarryChains)
{
    const BigUInt a(0xffff'ffff'ffff'ffffull);
    const BigUInt sum = a + BigUInt(1);
    EXPECT_EQ(sum.toString(), "18446744073709551616"); // 2^64
    EXPECT_EQ((sum + sum).toString(), "36893488147419103232");
}

TEST(BigUInt, SubtractionExact)
{
    const BigUInt a = BigUInt::fromDecimal("100000000000000000000");
    const BigUInt b = BigUInt::fromDecimal("99999999999999999999");
    EXPECT_EQ((a - b).toString(), "1");
    EXPECT_TRUE((a - a).isZero());
}

TEST(BigUIntDeathTest, SubtractionUnderflowPanics)
{
    EXPECT_DEATH(BigUInt(1) - BigUInt(2), "underflow");
}

TEST(BigUInt, MultiplicationLargeValues)
{
    // (2^64 - 1)^2 = 2^128 - 2^65 + 1
    const BigUInt a(0xffff'ffff'ffff'ffffull);
    EXPECT_EQ((a * a).toString(),
              "340282366920938463426481119284349108225");
    EXPECT_TRUE((a * BigUInt(0)).isZero());
    EXPECT_EQ(a * BigUInt(1), a);
}

TEST(BigUInt, DivmodBasics)
{
    const BigUInt a(1000);
    auto [q, r] = a.divmod(BigUInt(7));
    EXPECT_EQ(q.toU64(), 142u);
    EXPECT_EQ(r.toU64(), 6u);
}

TEST(BigUInt, DivmodLarge)
{
    const BigUInt a = BigUInt::fromDecimal(
        "340282366920938463426481119284349108225");
    const BigUInt b(0xffff'ffff'ffff'ffffull);
    EXPECT_EQ(a / b, b);
    EXPECT_TRUE((a % b).isZero());
}

TEST(BigUInt, DivmodIdentity)
{
    // For random-ish values: a == q*b + r with r < b.
    const BigUInt a = BigUInt::fromDecimal("987654321987654321987654321");
    const BigUInt b = BigUInt::fromDecimal("12345678912345");
    auto [q, r] = a.divmod(b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
}

TEST(BigUIntDeathTest, DivisionByZeroPanics)
{
    EXPECT_DEATH(BigUInt(5).divmod(BigUInt(0)), "zero");
}

TEST(BigUInt, Shifts)
{
    BigUInt v(1);
    v <<= 100;
    EXPECT_EQ(v.bitLength(), 101u);
    EXPECT_EQ(v.toString(), "1267650600228229401496703205376");
    v >>= 100;
    EXPECT_EQ(v, BigUInt(1));
    v >>= 1;
    EXPECT_TRUE(v.isZero());
}

TEST(BigUInt, BitAccess)
{
    const BigUInt v = BigUInt(1) << 77;
    EXPECT_TRUE(v.bit(77));
    EXPECT_FALSE(v.bit(76));
    EXPECT_FALSE(v.bit(200));
}

TEST(BigUInt, Comparisons)
{
    const BigUInt small(5);
    const BigUInt big = BigUInt::fromDecimal("99999999999999999999999");
    EXPECT_LT(small, big);
    EXPECT_GT(big, small);
    EXPECT_LE(small, BigUInt(5));
    EXPECT_EQ(small <=> BigUInt(5), std::strong_ordering::equal);
}

TEST(BigUInt, PowMatchesKnownValues)
{
    EXPECT_EQ(BigUInt(2).pow(10).toU64(), 1024u);
    EXPECT_EQ(BigUInt(16).pow(32).toString(),
              "340282366920938463463374607431768211456"); // 2^128
    EXPECT_EQ(BigUInt(7).pow(0), BigUInt(1));
    EXPECT_EQ(BigUInt(0).pow(0), BigUInt(1));
    EXPECT_TRUE(BigUInt(0).pow(5).isZero());
}

TEST(BigUInt, Gcd)
{
    EXPECT_EQ(BigUInt::gcd(BigUInt(12), BigUInt(18)).toU64(), 6u);
    EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(5)).toU64(), 1u);
    EXPECT_EQ(BigUInt::gcd(BigUInt(0), BigUInt(9)).toU64(), 9u);
    EXPECT_EQ(BigUInt::gcd(BigUInt(9), BigUInt(0)).toU64(), 9u);
}

TEST(BigUInt, ToDoubleAccuracy)
{
    EXPECT_DOUBLE_EQ(BigUInt(1000000).toDouble(), 1e6);
    const double big = BigUInt(2).pow(100).toDouble();
    EXPECT_NEAR(big / std::pow(2.0, 100), 1.0, 1e-12);
    EXPECT_NEAR(static_cast<double>(BigUInt(2).pow(100).toLongDouble()) /
                    std::pow(2.0, 100),
                1.0, 1e-12);
}

TEST(BigUIntDeathTest, ToU64OverflowPanics)
{
    EXPECT_DEATH(BigUInt(2).pow(70).toU64(), "64 bits");
}

TEST(BigUInt, AssociativityAndDistributivityProperty)
{
    const BigUInt a = BigUInt::fromDecimal("123456789123456789");
    const BigUInt b = BigUInt::fromDecimal("98765432198765432101");
    const BigUInt c = BigUInt::fromDecimal("555555555555");
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a * b) * c, a * (b * c));
}

} // namespace
} // namespace rcoal::numeric
