/**
 * @file
 * Unit tests for BigRational.
 */

#include <gtest/gtest.h>

#include "rcoal/numeric/big_rational.hpp"

namespace rcoal::numeric {
namespace {

TEST(BigRational, DefaultIsZero)
{
    BigRational r;
    EXPECT_TRUE(r.isZero());
    EXPECT_EQ(r.toString(), "0");
    EXPECT_EQ(r.denominator(), BigUInt(1));
}

TEST(BigRational, ReducesToLowestTerms)
{
    const BigRational r(BigUInt(6), BigUInt(8));
    EXPECT_EQ(r.numerator(), BigUInt(3));
    EXPECT_EQ(r.denominator(), BigUInt(4));
    EXPECT_EQ(r.toString(), "3/4");
}

TEST(BigRational, WholeNumbersPrintWithoutDenominator)
{
    const BigRational r(BigUInt(10), BigUInt(5));
    EXPECT_EQ(r.toString(), "2");
}

TEST(BigRational, Arithmetic)
{
    const BigRational half(BigUInt(1), BigUInt(2));
    const BigRational third(BigUInt(1), BigUInt(3));
    EXPECT_EQ((half + third).toString(), "5/6");
    EXPECT_EQ((half - third).toString(), "1/6");
    EXPECT_EQ((half * third).toString(), "1/6");
    EXPECT_EQ((half / third).toString(), "3/2");
}

TEST(BigRational, SumOfSeriesIsExact)
{
    // 1/1 + 1/2 + ... + 1/10 = 7381/2520.
    BigRational sum;
    for (std::uint64_t k = 1; k <= 10; ++k)
        sum += BigRational(BigUInt(1), BigUInt(k));
    EXPECT_EQ(sum.toString(), "7381/2520");
}

TEST(BigRational, Comparisons)
{
    const BigRational half(BigUInt(1), BigUInt(2));
    const BigRational third(BigUInt(1), BigUInt(3));
    EXPECT_GT(half, third);
    EXPECT_LT(third, half);
    EXPECT_EQ(half, BigRational(BigUInt(2), BigUInt(4)));
    EXPECT_GE(half, half);
}

TEST(BigRationalDeathTest, SubtractionBelowZeroPanics)
{
    const BigRational half(BigUInt(1), BigUInt(2));
    const BigRational one(1);
    EXPECT_DEATH(
        {
            BigRational r = half;
            r -= one;
        },
        "underflow");
}

TEST(BigRationalDeathTest, ZeroDenominatorPanics)
{
    EXPECT_DEATH(BigRational(BigUInt(1), BigUInt(0)), "denominator");
}

TEST(BigRationalDeathTest, DivisionByZeroPanics)
{
    EXPECT_DEATH(BigRational(1) / BigRational(0), "zero");
}

TEST(BigRational, ToDoubleConversion)
{
    EXPECT_DOUBLE_EQ(BigRational(BigUInt(1), BigUInt(4)).toDouble(), 0.25);
    EXPECT_DOUBLE_EQ(BigRational(BigUInt(2), BigUInt(3)).toDouble(),
                     2.0 / 3.0);
}

TEST(BigRational, HugeMagnitudeRatio)
{
    // (2^200) / (2^199) = 2 exactly.
    const BigRational r(BigUInt(2).pow(200), BigUInt(2).pow(199));
    EXPECT_DOUBLE_EQ(r.toDouble(), 2.0);
    EXPECT_EQ(r.toString(), "2");
}

TEST(BigRational, ZeroTimesAnything)
{
    const BigRational big(BigUInt(2).pow(100), BigUInt(3));
    EXPECT_TRUE((BigRational(0) * big).isZero());
}

} // namespace
} // namespace rcoal::numeric
