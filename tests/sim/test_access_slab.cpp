/**
 * @file
 * Unit tests for the hot-path packet store: AccessSlab slot recycling
 * and the SlotRing fixed-capacity FIFO the queue hops are built from.
 *
 * Every test name matches the "*Ring*" / "*Slab*" TSan filters so the
 * suite also runs under ThreadSanitizer in CI alongside the SoA
 * saturation fixtures.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/sim/access_slab.hpp"

namespace rcoal::sim {
namespace {

MemoryAccess
makeAccess(std::uint64_t id)
{
    MemoryAccess access;
    access.id = id;
    access.blockAddr = 0x1000 + id * 64;
    access.bytes = 64;
    access.prtIndices.push_back(static_cast<std::size_t>(id));
    return access;
}

// ---------------------------------------------------------------------
// SlotRing

TEST(SlotRing, RingPushPopPreservesFifoOrder)
{
    SlotRing<std::uint32_t> ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);

    for (std::uint32_t v = 0; v < 4; ++v)
        ring.push_back(v);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.size(), 4u);

    for (std::uint32_t v = 0; v < 4; ++v) {
        EXPECT_EQ(ring.front(), v);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SlotRing, RingWraparoundKeepsOrderAndIndexing)
{
    // Cycle enough pushes/pops through a small ring that head wraps
    // several times; FIFO order and operator[] must stay consistent.
    SlotRing<std::uint32_t> ring(3);
    std::uint32_t next = 0;
    std::uint32_t expect = 0;
    ring.push_back(next++);
    ring.push_back(next++);
    for (int step = 0; step < 20; ++step) {
        ring.push_back(next++);
        EXPECT_TRUE(ring.full());
        for (std::size_t i = 0; i < ring.size(); ++i)
            EXPECT_EQ(ring[i], expect + i) << "step " << step;
        EXPECT_EQ(ring.front(), expect);
        ring.pop_front();
        ++expect;
    }
    EXPECT_EQ(ring.size(), 2u);
}

TEST(SlotRing, RingRemoveAtMiddleShiftsTailForward)
{
    SlotRing<std::uint32_t> ring(5);
    for (std::uint32_t v = 0; v < 5; ++v)
        ring.push_back(v);

    ring.removeAt(2); // {0, 1, 3, 4}
    ASSERT_EQ(ring.size(), 4u);
    const std::uint32_t expected[] = {0, 1, 3, 4};
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring[i], expected[i]);

    // Freed capacity is immediately reusable (backpressure parity with
    // the deque this replaced).
    ring.push_back(5);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring[4], 5u);
}

TEST(SlotRing, RingRemoveAtAcrossWrapBoundary)
{
    // Arrange the live window to straddle the physical end of storage,
    // then erase elements on both sides of the wrap point.
    SlotRing<std::uint32_t> ring(4);
    for (std::uint32_t v = 0; v < 4; ++v)
        ring.push_back(v);
    ring.pop_front();
    ring.pop_front();
    ring.push_back(4);
    ring.push_back(5); // Window {2, 3, 4, 5}, head at physical slot 2.

    ring.removeAt(1); // Erase 3: shift crosses the wrap → {2, 4, 5}.
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring[0], 2u);
    EXPECT_EQ(ring[1], 4u);
    EXPECT_EQ(ring[2], 5u);

    ring.removeAt(2); // Erase the last element (wrapped side) → {2, 4}.
    ASSERT_EQ(ring.size(), 2u);
    EXPECT_EQ(ring[0], 2u);
    EXPECT_EQ(ring[1], 4u);

    ring.removeAt(0); // Erase the front without popping → {4}.
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.front(), 4u);
}

TEST(SlotRing, RingResetAndClearDiscardContents)
{
    SlotRing<std::uint32_t> ring(2);
    ring.push_back(7);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 2u);

    ring.push_back(8);
    ring.reset(6);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 6u);
    for (std::uint32_t v = 0; v < 6; ++v)
        ring.push_back(v);
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.front(), 0u);
}

// ---------------------------------------------------------------------
// AccessSlab

TEST(AccessSlab, SlabAllocateAtFreeRoundTrip)
{
    AccessSlab slab(4);
    EXPECT_TRUE(slab.empty());

    const std::uint32_t a = slab.allocate(makeAccess(10));
    const std::uint32_t b = slab.allocate(makeAccess(11));
    EXPECT_NE(a, b);
    EXPECT_EQ(slab.liveCount(), 2u);
    EXPECT_EQ(slab.at(a).id, 10u);
    EXPECT_EQ(slab.at(b).id, 11u);
    EXPECT_EQ(slab.at(a).prtIndices.size(), 1u);

    slab.free(a);
    slab.free(b);
    EXPECT_TRUE(slab.empty());
}

TEST(AccessSlab, SlabRecyclesFreedSlots)
{
    AccessSlab slab(2);
    const std::uint32_t a = slab.allocate(makeAccess(1));
    const std::uint32_t b = slab.allocate(makeAccess(2));
    slab.free(a);

    // LIFO recycling: the freed slot is handed out again before the
    // storage grows. Slot numbers are pure IDs, so this is merely a
    // no-growth check, not an ordering contract the machine relies on.
    const std::uint32_t c = slab.allocate(makeAccess(3));
    EXPECT_EQ(c, a);
    EXPECT_EQ(slab.at(c).id, 3u);
    EXPECT_EQ(slab.at(b).id, 2u);
    EXPECT_EQ(slab.liveCount(), 2u);
    slab.free(b);
    slab.free(c);
    EXPECT_TRUE(slab.empty());
}

TEST(AccessSlab, SlabTakeMovesRecordOutAndFreesSlot)
{
    AccessSlab slab;
    const std::uint32_t slot = slab.allocate(makeAccess(42));
    const MemoryAccess access = slab.take(slot);
    EXPECT_EQ(access.id, 42u);
    EXPECT_EQ(access.blockAddr, 0x1000u + 42 * 64);
    EXPECT_TRUE(slab.empty());

    // The recycled slot is reusable immediately.
    const std::uint32_t again = slab.allocate(makeAccess(43));
    EXPECT_EQ(again, slot);
    EXPECT_EQ(slab.at(again).id, 43u);
    slab.free(again);
}

TEST(AccessSlab, SlabGrowsPastInitialCapacity)
{
    AccessSlab slab(/*initial_capacity=*/1);
    std::vector<std::uint32_t> slots;
    for (std::uint64_t i = 0; i < 100; ++i)
        slots.push_back(slab.allocate(makeAccess(i)));
    EXPECT_EQ(slab.liveCount(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(slab.at(slots[i]).id, i);
    for (const std::uint32_t slot : slots)
        slab.free(slot);
    EXPECT_TRUE(slab.empty());
}

} // namespace
} // namespace rcoal::sim
