/**
 * @file
 * Tests for the warp scheduler policies and DRAM refresh.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/dram.hpp"
#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::sim {
namespace {

TEST(SchedulerPolicyTest, BothPoliciesCompleteWithSameWork)
{
    const auto kernel = workloads::makeStreamingKernel(8, 20, 32);
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 4;
    cfg.numSms = 2; // several warps per scheduler

    cfg.scheduler = SchedulerPolicy::LooseRoundRobin;
    const auto lrr = Gpu(cfg).launch(*kernel);
    cfg.scheduler = SchedulerPolicy::GreedyThenOldest;
    const auto gto = Gpu(cfg).launch(*kernel);

    EXPECT_EQ(lrr.coalescedAccesses, gto.coalescedAccesses);
    EXPECT_EQ(lrr.warpInstructions, gto.warpInstructions);
    EXPECT_GT(gto.cycles, 0u);
}

TEST(SchedulerPolicyTest, GtoPrefersASingleWarp)
{
    // With two compute-heavy warps on one scheduler, GTO drains one
    // before touching the other; LRR interleaves. Both finish, and the
    // total time is within the same ballpark.
    std::vector<std::vector<WarpInstruction>> traces(2);
    for (auto &trace : traces) {
        for (int i = 0; i < 30; ++i)
            trace.push_back(WarpInstruction::alu(1));
    }
    const VectorKernel kernel(std::move(traces));
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 1;
    cfg.issueWidth = 1;

    cfg.scheduler = SchedulerPolicy::GreedyThenOldest;
    const auto gto = Gpu(cfg).launch(kernel);
    cfg.scheduler = SchedulerPolicy::LooseRoundRobin;
    const auto lrr = Gpu(cfg).launch(kernel);
    EXPECT_EQ(gto.warpInstructions, 60u);
    EXPECT_EQ(lrr.warpInstructions, 60u);
    // One issue per cycle either way: identical completion time.
    EXPECT_EQ(gto.cycles, lrr.cycles);
}

TEST(DramRefresh, DisabledByDefaultAndNoRefreshStats)
{
    const auto kernel = workloads::makeStreamingKernel(1, 50, 32);
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 4;
    const auto stats = Gpu(cfg).launch(*kernel);
    EXPECT_EQ(stats.dramRefreshes, 0u);
}

TEST(DramRefresh, FiresPeriodicallyWhenEnabled)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.refreshEnabled = true;
    cfg.timing.tREFI = 50;
    cfg.timing.tRFC = 10;
    KernelStats stats;
    DramPartition dram(cfg, 0, &stats);
    for (Cycle c = 1; c <= 500; ++c)
        dram.tick(c);
    // ~500/50 = 10 refreshes (first at tREFI).
    EXPECT_GE(stats.dramRefreshes, 9u);
    EXPECT_LE(stats.dramRefreshes, 10u);
}

TEST(DramRefresh, RefreshClosesRowsAndDelaysAccess)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.refreshEnabled = true;
    cfg.timing.tREFI = 60;
    cfg.timing.tRFC = 40;

    KernelStats stats;
    DramPartition dram(cfg, 0, &stats);
    const AddressMapping mapping(cfg);

    // Warm the row before the refresh window.
    MemoryAccess first;
    first.id = 1;
    first.blockAddr = 0;
    dram.enqueue(first, mapping.decode(0), 0);
    Cycle done1 = 0;
    for (Cycle c = 1; c <= 50 && !done1; ++c) {
        dram.tick(c);
        while (dram.hasCompleted(c)) {
            dram.popCompleted(c);
            done1 = c;
        }
    }
    ASSERT_GT(done1, 0u);

    // Enqueue a same-row access right after the refresh fires at 60:
    // it must wait out tRFC and re-activate (row miss).
    MemoryAccess second;
    second.id = 2;
    second.blockAddr = 64;
    dram.enqueue(second, mapping.decode(64), 61);
    Cycle done2 = 0;
    for (Cycle c = 61; c <= 400 && !done2; ++c) {
        dram.tick(c);
        while (dram.hasCompleted(c)) {
            dram.popCompleted(c);
            done2 = c;
        }
    }
    ASSERT_GT(done2, 0u);
    EXPECT_GE(stats.dramRefreshes, 1u);
    // Completion no earlier than refresh end + tRCD + tCL.
    EXPECT_GE(done2, 60u + cfg.timing.tRFC + cfg.timing.tRCD +
                         cfg.timing.tCL);
    EXPECT_EQ(stats.dramRowMisses, 2u); // both needed an ACT
}

TEST(DramRefresh, AesResultsUnchangedByDefault)
{
    // Guard: adding the refresh machinery must not perturb the default
    // (refresh-off) experiment numbers.
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 4;
    const auto kernel = workloads::makeStridedKernel(2, 10, 32, 64);
    const auto a = Gpu(cfg).launch(*kernel);
    const auto b = Gpu(cfg).launch(*kernel);
    EXPECT_EQ(a.cycles, b.cycles);
}

} // namespace
} // namespace rcoal::sim
