/**
 * @file
 * Protocol-checker-backed tests of the DRAM model.
 *
 * Two layers: a property test that FR-FCFS never issues a command
 * violating a bank timing constraint (random request streams, refresh
 * on and off), and regressions that re-enable the pre-fix timing
 * bookkeeping (enableLegacyTimingForTest) and show the checker catches
 * exactly the violations the fix removed.
 */

#include <random>

#include <gtest/gtest.h>

#include "rcoal/mem/dram_backend.hpp"
#include "rcoal/sim/dram.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/trace/dram_checker.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::sim {
namespace {

struct DramProtocolFixture : public testing::Test
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    KernelStats stats;

    /** Referee parameterized exactly as the partition's backend. */
    trace::DramProtocolChecker::Params
    checkerParams() const
    {
        return mem::checkerParamsFor(cfg);
    }

    MemoryAccess
    makeAccess(std::uint64_t id)
    {
        MemoryAccess a;
        a.id = id;
        a.blockAddr = id * 64;
        a.bytes = 64;
        return a;
    }

    DramLocation
    loc(unsigned bank, std::uint64_t row)
    {
        DramLocation l;
        l.partition = 0;
        l.bank = bank;
        l.bankGroup = bank % cfg.bankGroups;
        l.row = row;
        l.column = 0;
        return l;
    }

    /** Drain completions so the queue keeps accepting. */
    static void
    drain(DramPartition &dram, Cycle now)
    {
        while (dram.hasCompleted(now))
            dram.popCompleted(now);
    }

    /**
     * Offer a seeded random request stream (hot rows for hits, cold
     * rows for conflicts, all banks) for @p cycles memory cycles.
     */
    void
    driveRandomTraffic(DramPartition &dram, std::uint64_t seed,
                       Cycle cycles)
    {
        std::mt19937_64 rng(seed);
        std::uniform_int_distribution<unsigned> bank_dist(
            0, cfg.banksPerPartition - 1);
        std::uniform_int_distribution<std::uint64_t> row_dist(0, 3);
        std::uniform_int_distribution<int> offer_dist(0, 9);
        std::uint64_t next_id = 0;
        for (Cycle now = 0; now < cycles; ++now) {
            // ~30% offered load, bursty enough to back the queue up.
            if (offer_dist(rng) < 3 && dram.canAccept()) {
                dram.enqueue(makeAccess(next_id++),
                             loc(bank_dist(rng), row_dist(rng)), now);
            }
            dram.tick(now);
            drain(dram, now);
        }
    }
};

TEST_F(DramProtocolFixture, RandomTrafficNeverViolatesTheProtocol)
{
    cfg.refreshEnabled = false;
    for (std::uint64_t seed : {11u, 22u, 33u}) {
        trace::DramProtocolChecker checker(
            checkerParams(), trace::DramProtocolChecker::Mode::Collect);
        DramPartition dram(cfg, 0, &stats);
        dram.setChecker(&checker);
        driveRandomTraffic(dram, seed, 4000);
        EXPECT_TRUE(checker.clean())
            << "seed " << seed << ": "
            << checker.violations().front().rule << " — "
            << checker.violations().front().detail;
        // The stream must actually exercise the scheduler.
        EXPECT_GT(checker.commandsChecked(), 200u) << "seed " << seed;
    }
}

TEST_F(DramProtocolFixture, RandomTrafficWithRefreshStaysClean)
{
    cfg.refreshEnabled = true;
    cfg.timing.tREFI = 500; // Several refreshes inside the window.
    for (std::uint64_t seed : {44u, 55u}) {
        trace::DramProtocolChecker checker(
            checkerParams(), trace::DramProtocolChecker::Mode::Collect);
        DramPartition dram(cfg, 0, &stats);
        dram.setChecker(&checker);
        driveRandomTraffic(dram, seed, 4000);
        EXPECT_TRUE(checker.clean())
            << "seed " << seed << ": "
            << checker.violations().front().rule << " — "
            << checker.violations().front().detail;
        EXPECT_GT(stats.dramRefreshes, 3u) << "seed " << seed;
    }
}

/**
 * The deterministic scenario behind the precharge fix: a row-conflict
 * request arrives behind a train of same-row reads whose data bursts
 * queue up on the shared bus. Pre-fix, prechargeAllowed was a plain
 * assignment at ACT time, so the precharge fired as soon as the last
 * read had *issued* — mid-burst.
 */
void
offerReadTrainWithConflict(DramProtocolFixture &f, DramPartition &dram)
{
    for (std::uint64_t i = 0; i < 8; ++i)
        dram.enqueue(f.makeAccess(i), f.loc(0, 0), 0);
    dram.enqueue(f.makeAccess(99), f.loc(0, 1), 0);
    for (Cycle now = 0; now < 400; ++now) {
        dram.tick(now);
        DramProtocolFixture::drain(dram, now);
    }
}

TEST_F(DramProtocolFixture, LegacyTimingPrechargesMidBurst)
{
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    dram.enableLegacyTimingForTest();
    offerReadTrainWithConflict(*this, dram);

    ASSERT_FALSE(checker.clean())
        << "legacy timing should trip the checker";
    bool saw_rd_to_pre = false;
    for (const auto &v : checker.violations())
        saw_rd_to_pre |= v.rule == "rd-to-pre";
    EXPECT_TRUE(saw_rd_to_pre)
        << "first violation: " << checker.violations().front().rule;
}

TEST_F(DramProtocolFixture, FixedTimingDrainsBurstsBeforePrecharge)
{
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    offerReadTrainWithConflict(*this, dram);

    EXPECT_TRUE(checker.clean())
        << checker.violations().front().rule << " — "
        << checker.violations().front().detail;
    EXPECT_EQ(stats.dramPrecharges, 1u);
    EXPECT_TRUE(dram.idle());
}

/**
 * The refresh half of the legacy seam: pre-fix, a due refresh fired
 * unconditionally, closing rows inside tRAS and clobbering in-flight
 * bursts. An aggressive tREFI makes the window easy to hit.
 */
void
offerWorkUnderTightRefresh(DramProtocolFixture &f, DramPartition &dram)
{
    dram.enqueue(f.makeAccess(1), f.loc(0, 0), 0);
    for (Cycle now = 0; now < 200; ++now) {
        dram.tick(now);
        DramProtocolFixture::drain(dram, now);
    }
}

TEST_F(DramProtocolFixture, LegacyRefreshFiresInsideTras)
{
    cfg.refreshEnabled = true;
    cfg.timing.tREFI = 20; // Due while the first row is inside tRAS.
    cfg.timing.tRFC = 10;  // Keep refresh-to-refresh spacing legal.
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    dram.enableLegacyTimingForTest();
    offerWorkUnderTightRefresh(*this, dram);

    ASSERT_FALSE(checker.clean());
    bool saw_refresh_rule = false;
    for (const auto &v : checker.violations()) {
        saw_refresh_rule |=
            v.rule == "ref-tRAS" || v.rule == "ref-bus-busy";
    }
    EXPECT_TRUE(saw_refresh_rule)
        << "first violation: " << checker.violations().front().rule;
}

TEST_F(DramProtocolFixture, FixedRefreshDefersUntilQuiescent)
{
    cfg.refreshEnabled = true;
    cfg.timing.tREFI = 20;
    cfg.timing.tRFC = 10;
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    offerWorkUnderTightRefresh(*this, dram);

    EXPECT_TRUE(checker.clean())
        << checker.violations().front().rule << " — "
        << checker.violations().front().detail;
    EXPECT_GT(stats.dramRefreshes, 0u);
    EXPECT_TRUE(dram.idle()); // The deferral never starves the read.
}

// ---------------------------------------------------------------------
// The same referee, parameterized over every DRAM backend personality:
// the scheduler must satisfy whatever window set the backend declares,
// and the legacy-timing seam must trip the backend-specific rules.

struct DramBackendProtocol
    : public DramProtocolFixture,
      public testing::WithParamInterface<DramBackendKind>
{
    void SetUp() override { cfg.dramBackend = GetParam(); }

    bool
    groupAware() const
    {
        return mem::makeDramBackend(GetParam())->timing(cfg)
            .bankGroupAware;
    }
};

TEST_P(DramBackendProtocol, RandomTrafficNeverViolatesTheProtocol)
{
    for (std::uint64_t seed : {11u, 22u}) {
        trace::DramProtocolChecker checker(
            checkerParams(), trace::DramProtocolChecker::Mode::Collect);
        DramPartition dram(cfg, 0, &stats);
        dram.setChecker(&checker);
        driveRandomTraffic(dram, seed, 4000);
        EXPECT_TRUE(checker.clean())
            << "seed " << seed << ": "
            << checker.violations().front().rule << " — "
            << checker.violations().front().detail;
        EXPECT_GT(checker.commandsChecked(), 200u) << "seed " << seed;
    }
}

TEST_P(DramBackendProtocol, RandomTrafficWithRefreshStaysClean)
{
    cfg.refreshEnabled = true;
    cfg.timing.tREFI = 500; // GDDR5 only; the others bring their own.
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    driveRandomTraffic(dram, 66, 12000);
    EXPECT_TRUE(checker.clean())
        << checker.violations().front().rule << " — "
        << checker.violations().front().detail;
    EXPECT_GT(stats.dramRefreshes, 0u);
}

TEST_P(DramBackendProtocol, FixedTimingDrainsReadTrainCleanly)
{
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    offerReadTrainWithConflict(*this, dram);
    EXPECT_TRUE(checker.clean())
        << checker.violations().front().rule << " — "
        << checker.violations().front().detail;
    EXPECT_TRUE(dram.idle());
}

TEST_P(DramBackendProtocol, LegacyTimingTripsTheBackendRules)
{
    // Legacy mode drops the burst-drain bookkeeping (every backend)
    // and the bank-group/pseudo-channel window state (the aware ones):
    // a same-bank read train must trip rd-to-pre everywhere and the
    // long column window wherever the backend declares one.
    trace::DramProtocolChecker checker(
        checkerParams(), trace::DramProtocolChecker::Mode::Collect);
    DramPartition dram(cfg, 0, &stats);
    dram.setChecker(&checker);
    dram.enableLegacyTimingForTest();
    offerReadTrainWithConflict(*this, dram);

    ASSERT_FALSE(checker.clean())
        << "legacy timing should trip the checker";
    bool saw_rd_to_pre = false;
    bool saw_group_rule = false;
    for (const auto &v : checker.violations()) {
        saw_rd_to_pre |= v.rule == "rd-to-pre";
        saw_group_rule |= v.rule == "tCCD_L" || v.rule == "tCCD_S" ||
            v.rule == "tRRD_L";
    }
    EXPECT_TRUE(saw_rd_to_pre)
        << "first violation: " << checker.violations().front().rule;
    EXPECT_EQ(saw_group_rule, groupAware())
        << "bank-group rules must fire exactly for aware backends";
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DramBackendProtocol,
    testing::Values(DramBackendKind::Gddr5, DramBackendKind::Gddr6,
                    DramBackendKind::Hbm2),
    [](const testing::TestParamInfo<DramBackendKind> &info) {
        return std::string(mem::dramBackendKindName(info.param));
    });

TEST(GpuMachineChecking, FullKernelRunsCleanUnderPanicCheckers)
{
    // End to end: a real kernel through the machine with a Panic-mode
    // checker on every partition — any protocol violation aborts.
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 4;
    GpuMachine machine(cfg);
    machine.enableDramChecking();
    const auto kernel = workloads::makeStreamingKernel(4, 16, 32);
    const auto id = machine.launch(*kernel, SmRange{0, 4});
    machine.runUntilDone(id);
    const KernelStats stats = machine.take(id);
    EXPECT_GT(stats.cycles, 0u);
    std::uint64_t commands = 0;
    for (const auto &checker : machine.dramCheckers())
        commands += checker->commandsChecked();
    EXPECT_GT(commands, 0u);
}

} // namespace
} // namespace rcoal::sim
