/**
 * @file
 * Unit tests for the persistent multi-kernel GpuMachine.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/gpu.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::sim {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 4;
    return cfg;
}

TEST(GpuMachine, SingleTenantMatchesGpuLaunch)
{
    const GpuConfig cfg = smallConfig();
    const auto kernel = workloads::makeStreamingKernel(8, 16, 32);

    Gpu gpu(cfg);
    const KernelStats solo = gpu.launch(*kernel);

    // Gpu::launch is a wrapper over GpuMachine; driving the machine by
    // hand with the same stream index must reproduce it exactly.
    GpuMachine machine(cfg);
    const auto id = machine.launchStream(
        *kernel, SmRange{0, cfg.numSms}, /*rng_stream_index=*/1);
    machine.runUntilDone(id);
    const KernelStats stats = machine.take(id);

    EXPECT_EQ(stats.cycles, solo.cycles);
    EXPECT_EQ(stats.warpInstructions, solo.warpInstructions);
    EXPECT_EQ(stats.coalescedAccesses, solo.coalescedAccesses);
    EXPECT_EQ(stats.loadAccesses, solo.loadAccesses);
    EXPECT_EQ(stats.storeAccesses, solo.storeAccesses);
    // DRAM counters live machine-level (shared structures); the solo
    // wrapper folds them into its per-launch stats.
    EXPECT_EQ(machine.memoryStats().dramRowHits, solo.dramRowHits);
    EXPECT_EQ(machine.memoryStats().dramRowMisses, solo.dramRowMisses);
}

TEST(GpuMachine, RangeBookkeeping)
{
    const GpuConfig cfg = smallConfig();
    GpuMachine machine(cfg);

    EXPECT_TRUE(machine.rangeFree(SmRange{0, 2}));
    EXPECT_TRUE(machine.rangeFree(SmRange{2, 2}));
    EXPECT_FALSE(machine.rangeFree(SmRange{3, 2})); // Out of bounds.
    EXPECT_FALSE(machine.rangeFree(SmRange{0, 0})); // Empty.

    const auto kernel = workloads::makeStreamingKernel(2, 4, 32);
    const auto id = machine.launch(*kernel, SmRange{0, 2});
    EXPECT_FALSE(machine.rangeFree(SmRange{0, 2}));
    EXPECT_FALSE(machine.rangeFree(SmRange{1, 2})); // Overlaps.
    EXPECT_TRUE(machine.rangeFree(SmRange{2, 2}));
    EXPECT_EQ(machine.busySms(), 2u);
    EXPECT_TRUE(machine.anyResident());

    machine.runUntilDone(id);
    (void)machine.take(id); // Frees the range.
    EXPECT_TRUE(machine.rangeFree(SmRange{0, 2}));
    EXPECT_EQ(machine.busySms(), 0u);
    EXPECT_FALSE(machine.anyResident());
}

TEST(GpuMachine, ConcurrentKernelsKeepTheirOwnCounters)
{
    const GpuConfig cfg = smallConfig();

    // Solo reference: the same kernel alone on SMs [0, 2).
    const auto kernel_a = workloads::makeStreamingKernel(4, 16, 32);
    const auto kernel_b = workloads::makeStreamingKernel(4, 16, 32);
    GpuMachine solo(cfg);
    const auto solo_id =
        solo.launchStream(*kernel_a, SmRange{0, 2}, 1);
    solo.runUntilDone(solo_id);
    const KernelStats alone = solo.take(solo_id);

    // Co-schedule two copies on disjoint gangs.
    GpuMachine machine(cfg);
    const auto id_a = machine.launchStream(*kernel_a, SmRange{0, 2}, 1);
    const auto id_b = machine.launchStream(*kernel_b, SmRange{2, 2}, 2);
    machine.runUntilDone(id_a);
    machine.runUntilDone(id_b);
    const KernelStats stats_a = machine.take(id_a);
    const KernelStats stats_b = machine.take(id_b);

    // Work counters are per-launch and unaffected by co-residency.
    EXPECT_EQ(stats_a.coalescedAccesses, alone.coalescedAccesses);
    EXPECT_EQ(stats_b.coalescedAccesses, alone.coalescedAccesses);
    EXPECT_EQ(stats_a.warpInstructions, alone.warpInstructions);
    EXPECT_EQ(stats_b.warpInstructions, alone.warpInstructions);

    // Timing is not: the two kernels contend for the crossbar and the
    // DRAM partitions, so neither can be faster than running alone.
    EXPECT_GE(stats_a.cycles, alone.cycles);
    EXPECT_GE(stats_b.cycles, alone.cycles);
    EXPECT_GT(stats_a.cycles + stats_b.cycles, alone.cycles);
}

TEST(GpuMachine, SmRangesAreReusableAcrossLaunches)
{
    const GpuConfig cfg = smallConfig();
    GpuMachine machine(cfg);
    const auto kernel = workloads::makeStreamingKernel(2, 8, 32);

    KernelStats first;
    KernelStats second;
    {
        const auto id = machine.launchStream(*kernel, SmRange{0, 2}, 7);
        machine.runUntilDone(id);
        first = machine.take(id);
    }
    {
        const auto id = machine.launchStream(*kernel, SmRange{0, 2}, 7);
        machine.runUntilDone(id);
        second = machine.take(id);
    }
    // Same kernel, same RNG stream: identical per-launch work. (Service
    // time may differ — the second launch sees warm DRAM row buffers.)
    EXPECT_EQ(first.coalescedAccesses, second.coalescedAccesses);
    EXPECT_EQ(first.warpInstructions, second.warpInstructions);
    EXPECT_GT(second.cycles, 0u);
}

} // namespace
} // namespace rcoal::sim
