/**
 * @file
 * Cross-checks of the event-driven simulation core: fast-forwarding
 * over provably idle cycles must be byte-identical to single-stepping
 * — every KernelStats field, every trace-event stream, every attack
 * observation, for every coalescing policy and for multi-kernel serve
 * runs. These tests are the enforcement arm of the cycleSkipping
 * contract; CI additionally runs the whole suite once with
 * RCOAL_CYCLE_SKIPPING=0 so the legacy loop stays honest.
 */

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/attack/encryption_service.hpp"
#include "rcoal/serve/scheduler.hpp"
#include "rcoal/serve/server.hpp"
#include "rcoal/sim/gpu.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/trace/tracer.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::sim {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

/** The policy families the byte-identity contract must hold for. */
std::vector<core::CoalescingPolicy>
allPolicies()
{
    return {
        core::CoalescingPolicy::baseline(),
        core::CoalescingPolicy::fss(4),
        core::CoalescingPolicy::rss(4),
        core::CoalescingPolicy::rss(4, true),
    };
}

void
expectIdenticalStats(const KernelStats &a, const KernelStats &b,
                     const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.warpInstructions, b.warpInstructions) << label;
    EXPECT_EQ(a.memInstructions, b.memInstructions) << label;
    EXPECT_EQ(a.coalescedAccesses, b.coalescedAccesses) << label;
    EXPECT_EQ(a.loadAccesses, b.loadAccesses) << label;
    EXPECT_EQ(a.storeAccesses, b.storeAccesses) << label;
    for (std::size_t t = 0; t < a.perTag.size(); ++t) {
        EXPECT_EQ(a.perTag[t].accesses, b.perTag[t].accesses)
            << label << " tag " << t;
        EXPECT_EQ(a.perTag[t].laneRequests, b.perTag[t].laneRequests)
            << label << " tag " << t;
        EXPECT_EQ(a.perTag[t].firstIssue, b.perTag[t].firstIssue)
            << label << " tag " << t;
        EXPECT_EQ(a.perTag[t].lastComplete, b.perTag[t].lastComplete)
            << label << " tag " << t;
    }
    EXPECT_EQ(a.dramRowHits, b.dramRowHits) << label;
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses) << label;
    EXPECT_EQ(a.dramActivates, b.dramActivates) << label;
    EXPECT_EQ(a.dramPrecharges, b.dramPrecharges) << label;
    EXPECT_EQ(a.dramRefreshes, b.dramRefreshes) << label;
    EXPECT_EQ(a.l1Hits, b.l1Hits) << label;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l1SectorMisses, b.l1SectorMisses) << label;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.l2SectorMisses, b.l2SectorMisses) << label;
    EXPECT_EQ(a.mshrMerges, b.mshrMerges) << label;
    EXPECT_EQ(a.l2MshrMerges, b.l2MshrMerges) << label;
    EXPECT_EQ(a.prtStallCycles, b.prtStallCycles) << label;
    EXPECT_EQ(a.icnStallCycles, b.icnStallCycles) << label;
}

/** One AES launch of @p lines lines under @p cfg. */
KernelStats
launchAes(GpuConfig cfg, unsigned lines = 32)
{
    Gpu gpu(cfg);
    Rng rng = Rng::stream(7, 0);
    const auto plaintext = workloads::randomPlaintext(lines, rng);
    const workloads::AesGpuKernel kernel(plaintext, kKey, cfg.warpSize);
    return gpu.launch(kernel);
}

TEST(CycleSkipping, KernelStatsIdenticalAcrossPolicies)
{
    for (const auto &policy : allPolicies()) {
        GpuConfig cfg = GpuConfig::paperBaseline();
        cfg.policy = policy;

        cfg.cycleSkipping = false;
        const KernelStats stepped = launchAes(cfg);
        cfg.cycleSkipping = true;
        const KernelStats skipped = launchAes(cfg);

        expectIdenticalStats(stepped, skipped, policy.name());
    }
}

TEST(CycleSkipping, FastForwardsKernelWaitsAndIdleWindows)
{
    if (!resolveCycleSkipping(true))
        GTEST_SKIP() << "cycle skipping forced off process-wide";

    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.policy = core::CoalescingPolicy::rss(8, true);
    GpuMachine machine(cfg);
    ASSERT_TRUE(machine.cycleSkippingEnabled());

    Rng rng = Rng::stream(7, 0);
    const auto plaintext = workloads::randomPlaintext(32, rng);
    const workloads::AesGpuKernel kernel(plaintext, kKey, cfg.warpSize);
    const auto id = machine.launchStream(kernel, SmRange{0, cfg.numSms},
                                         /*rng_stream_index=*/1);
    machine.runUntilDone(id);
    const KernelStats stats = machine.take(id);

    // A dense AES kernel keeps the ldst queues and crossbars busy
    // almost every cycle, so in-kernel skipping only harvests the
    // scattered DRAM/interconnect waits — but it must harvest them.
    EXPECT_GT(stats.cycles, 0u);
    const Cycle in_kernel_skipped = machine.skippedCycles();
    EXPECT_GT(in_kernel_skipped, 0u);

    // The big win is idle windows (serve think times / arrival gaps):
    // an idle machine must cross them in O(1) steps, the way the serve
    // loop's event-driven sleep does.
    const Cycle gap_start = machine.now();
    const Cycle gap_end = gap_start + 4000;
    unsigned iterations = 0;
    while (machine.now() < gap_end) {
        machine.tick();
        const Cycle bound =
            std::min(machine.nextEventCycle(), gap_end);
        if (bound > machine.now() + 1)
            machine.skipTo(bound);
        ++iterations;
    }
    EXPECT_LE(iterations, 4u)
        << "idle window was stepped, not skipped";
    EXPECT_GE(machine.skippedCycles() - in_kernel_skipped, 3990u);
}

TEST(CycleSkipping, TraceEventStreamsIdentical)
{
    // With RCOAL_TRACE compiled out both runs record nothing and the
    // comparison is trivially true; with it compiled in, every sink's
    // retained event window must match event-for-event (the SM bound
    // pins per-cycle stepping whenever a stall event would be emitted).
    auto traced_run = [](bool skipping) {
        GpuConfig cfg = GpuConfig::paperBaseline();
        cfg.numSms = 4;
        cfg.policy = core::CoalescingPolicy::rss(4, true);
        cfg.cycleSkipping = skipping;
        auto tracer = std::make_unique<trace::Tracer>(1 << 14);
        GpuMachine machine(cfg);
        machine.setTracer(tracer.get());
        Rng rng = Rng::stream(7, 0);
        const auto plaintext = workloads::randomPlaintext(32, rng);
        const workloads::AesGpuKernel kernel(plaintext, kKey,
                                             cfg.warpSize);
        const auto id = machine.launchStream(kernel, SmRange{0, 4},
                                             /*rng_stream_index=*/1);
        machine.runUntilDone(id);
        (void)machine.take(id);
        machine.setTracer(nullptr);
        return tracer;
    };

    const auto stepped = traced_run(false);
    const auto skipped = traced_run(true);

    ASSERT_EQ(stepped->sinks().size(), skipped->sinks().size());
    for (std::size_t s = 0; s < stepped->sinks().size(); ++s) {
        const trace::TraceSink &a = *stepped->sinks()[s];
        const trace::TraceSink &b = *skipped->sinks()[s];
        ASSERT_EQ(a.name(), b.name());
        EXPECT_EQ(a.totalRecorded(), b.totalRecorded()) << a.name();
        const auto ea = a.snapshot();
        const auto eb = b.snapshot();
        ASSERT_EQ(ea.size(), eb.size()) << a.name();
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].cycle, eb[i].cycle)
                << a.name() << " event " << i;
            EXPECT_EQ(ea[i].kind, eb[i].kind)
                << a.name() << " event " << i;
            EXPECT_EQ(ea[i].a, eb[i].a) << a.name() << " event " << i;
            EXPECT_EQ(ea[i].b, eb[i].b) << a.name() << " event " << i;
            EXPECT_EQ(ea[i].c, eb[i].c) << a.name() << " event " << i;
        }
    }
}

TEST(CycleSkipping, AttackObservationsIdentical)
{
    // attackKey() is a pure function of the observation vector, so
    // byte-identical observations imply byte-identical attack results
    // for every measurement vector.
    for (const auto &policy : allPolicies()) {
        GpuConfig cfg = GpuConfig::paperBaseline();
        cfg.policy = policy;

        cfg.cycleSkipping = false;
        const auto stepped = attack::EncryptionService::
            collectSamplesParallel(cfg, kKey, /*samples=*/6,
                                   /*lines=*/32, /*plaintext_seed=*/7);
        cfg.cycleSkipping = true;
        const auto skipped = attack::EncryptionService::
            collectSamplesParallel(cfg, kKey, /*samples=*/6,
                                   /*lines=*/32, /*plaintext_seed=*/7);

        ASSERT_EQ(stepped.size(), skipped.size());
        for (std::size_t i = 0; i < stepped.size(); ++i) {
            const std::string label =
                policy.name() + " sample " + std::to_string(i);
            EXPECT_EQ(stepped[i].ciphertext, skipped[i].ciphertext)
                << label;
            EXPECT_EQ(stepped[i].totalTime, skipped[i].totalTime)
                << label;
            EXPECT_EQ(stepped[i].lastRoundTime, skipped[i].lastRoundTime)
                << label;
            EXPECT_EQ(stepped[i].lastRoundAccesses,
                      skipped[i].lastRoundAccesses)
                << label;
            EXPECT_EQ(stepped[i].totalAccesses, skipped[i].totalAccesses)
                << label;
        }
    }
}

// ---------------------------------------------------------------------
// Saturation-regime fixtures for the SoA scoreboard / ring-buffer hot
// path: shrink one queue at a time until warps spend most cycles parked
// on its backpressure, then require byte identity across skipping.
// Names carry "Soa" so the fixtures run under the CI TSan filter.

TEST(CycleSkipping, SoaSaturatedPrtIdenticalStats)
{
    // The minimum legal PRT (one entry per lane) keeps exactly one
    // fully-diverged load in flight per SM: every other ready warp hits
    // the PRT-stall fast path in tryIssue each scan, the regime the SoA
    // pendingPrt memoization exists for.
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.prtEntries = cfg.warpSize;
    cfg.policy = core::CoalescingPolicy::rss(4, true);

    cfg.cycleSkipping = false;
    const KernelStats stepped = launchAes(cfg);
    cfg.cycleSkipping = true;
    const KernelStats skipped = launchAes(cfg);

    EXPECT_GT(stepped.prtStallCycles, 0u) << "fixture not saturating";
    expectIdenticalStats(stepped, skipped, "saturated PRT");
}

TEST(CycleSkipping, SoaSaturatedQueuesIdenticalStats)
{
    // Two-deep crossbar ports and DRAM queues back the pressure up
    // through the LD/ST ring into the issue stage: the ldst-capacity
    // fast path and the crossbar headTargets rescan run every cycle.
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 4;
    cfg.icnQueueDepth = 2;
    cfg.dramQueueDepth = 2;
    cfg.policy = core::CoalescingPolicy::rss(4, true);

    cfg.cycleSkipping = false;
    const KernelStats stepped = launchAes(cfg);
    cfg.cycleSkipping = true;
    const KernelStats skipped = launchAes(cfg);

    EXPECT_GT(stepped.icnStallCycles, 0u) << "fixture not saturating";
    expectIdenticalStats(stepped, skipped, "saturated queues");
}

TEST(CycleSkipping, DramProtocolHoldsUnderSkipping)
{
    // Panic-mode checkers on every partition, with refresh enabled so
    // the lowest-frequency timing rule is in play: fast-forwarding must
    // never jump over (or reorder around) a DRAM timing obligation.
    auto checked_run = [](bool skipping) {
        GpuConfig cfg = GpuConfig::paperBaseline();
        cfg.numSms = 4;
        cfg.refreshEnabled = true;
        cfg.policy = core::CoalescingPolicy::rss(4, true);
        cfg.cycleSkipping = skipping;
        GpuMachine machine(cfg);
        machine.enableDramChecking();
        Rng rng = Rng::stream(7, 0);
        const auto plaintext = workloads::randomPlaintext(32, rng);
        const workloads::AesGpuKernel kernel(plaintext, kKey,
                                             cfg.warpSize);
        const auto id = machine.launchStream(kernel, SmRange{0, 4},
                                             /*rng_stream_index=*/1);
        machine.runUntilDone(id);
        std::pair<KernelStats, KernelStats> stats{
            machine.take(id), machine.memoryStats()};
        std::uint64_t commands = 0;
        for (const auto &checker : machine.dramCheckers())
            commands += checker->commandsChecked();
        EXPECT_GT(commands, 0u);
        return stats;
    };

    const auto stepped = checked_run(false);
    const auto skipped = checked_run(true);
    expectIdenticalStats(stepped.first, skipped.first, "launch");
    // DRAM row/refresh counters accumulate machine-level (shared
    // structures are not attributable to a tenant) — compare those too.
    expectIdenticalStats(stepped.second, skipped.second, "machine");
    EXPECT_GT(stepped.second.dramRefreshes, 0u);
}

// ---------------------------------------------------------------------
// Serve-layer cross-checks: the multi-kernel machine plus the serving
// frontend's own event-driven sleep.

serve::ServeConfig
smallServe(serve::BatchPolicy policy)
{
    serve::ServeConfig cfg;
    cfg.batchPolicy = policy;
    cfg.queueCapacity = 16;
    cfg.maxBatchRequests = 2;
    cfg.batchTimeoutCycles = 2000;
    cfg.smsPerKernel = 2; // Two gangs on a 4-SM device.
    return cfg;
}

void
expectIdenticalServeReports(const serve::ServeReport &a,
                            const serve::ServeReport &b)
{
    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (std::size_t i = 0; i < a.completed.size(); ++i) {
        const auto &ca = a.completed[i];
        const auto &cb = b.completed[i];
        EXPECT_EQ(ca.id, cb.id) << "completion " << i;
        EXPECT_EQ(ca.arrival, cb.arrival) << "completion " << i;
        EXPECT_EQ(ca.launched, cb.launched) << "completion " << i;
        EXPECT_EQ(ca.completed, cb.completed) << "completion " << i;
        EXPECT_EQ(ca.ciphertext, cb.ciphertext) << "completion " << i;
        EXPECT_EQ(ca.kernelTotalTime, cb.kernelTotalTime)
            << "completion " << i;
        EXPECT_EQ(ca.kernelLastRoundTime, cb.kernelLastRoundTime)
            << "completion " << i;
        EXPECT_EQ(ca.kernelLastRoundAccesses,
                  cb.kernelLastRoundAccesses)
            << "completion " << i;
        EXPECT_EQ(ca.batchRequests, cb.batchRequests)
            << "completion " << i;
    }
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.kernelsLaunched, b.kernelsLaunched);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.maxBusySms, b.maxBusySms);
    EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.meanBusySms, b.meanBusySms);
    EXPECT_EQ(a.probeLatency.p50, b.probeLatency.p50);
    EXPECT_EQ(a.probeLatency.p99, b.probeLatency.p99);
}

TEST(CycleSkipping, ServeRunIdenticalWithBackgroundLoad)
{
    // Multi-kernel: two gangs, closed-loop probes plus open-loop
    // background tenants, under the hold-for-timeout batch policy whose
    // deadline is a genuine non-machine event the sleep must honor.
    for (const auto policy :
         {serve::BatchPolicy::Fcfs, serve::BatchPolicy::BatchFill}) {
        serve::WorkloadSpec spec;
        spec.probeSamples = 4;
        spec.probeLines = 32;
        spec.probeSeed = 7;
        spec.probeThinkCycles = 100;
        spec.backgroundMeanGapCycles = 2000.0;
        spec.backgroundLineChoices = {32, 64};
        spec.backgroundSeed = 1234;

        GpuConfig gpu = GpuConfig::paperBaseline();
        gpu.numSms = 4;
        gpu.seed = 42;

        gpu.cycleSkipping = false;
        const serve::EncryptionServer stepped_server(
            gpu, smallServe(policy), kKey);
        const serve::ServeReport stepped = stepped_server.run(spec);

        gpu.cycleSkipping = true;
        const serve::EncryptionServer skipped_server(
            gpu, smallServe(policy), kKey);
        const serve::ServeReport skipped = skipped_server.run(spec);

        expectIdenticalServeReports(stepped, skipped);
    }
}

TEST(CycleSkipping, SchedulerCompletionInvariantAcrossPollIntervals)
{
    // Drive the multi-kernel scheduler by hand at poll intervals
    // 1/64/1000, fast-forwarding between polls when skipping is on. The
    // true completion stamps must be invariant to both knobs.
    auto run_with_poll = [](Cycle poll_interval, bool skipping) {
        GpuConfig gpu = GpuConfig::paperBaseline();
        gpu.numSms = 4;
        gpu.cycleSkipping = skipping;
        serve::KernelScheduler scheduler(
            gpu, smallServe(serve::BatchPolicy::Fcfs), kKey);

        // Two single-request batches, one per gang: concurrent kernels.
        for (std::uint64_t r = 0; r < 2; ++r) {
            Rng rng = Rng::stream(7, r);
            serve::Request request;
            request.id = r;
            request.arrival = 0;
            request.isProbe = true;
            request.clientId = static_cast<int>(r);
            request.plaintext = workloads::randomPlaintext(32, rng);
            std::vector<serve::Request> batch;
            batch.push_back(std::move(request));
            EXPECT_TRUE(scheduler.gangFree());
            scheduler.launchBatch(std::move(batch), 0);
        }

        std::vector<Cycle> stamps;
        sim::GpuMachine &machine = scheduler.gpu();
        for (Cycle now = 0; now <= 500000 && stamps.size() < 2;) {
            if (now % poll_interval == 0) {
                for (const auto &done : scheduler.collectCompleted(now))
                    stamps.push_back(done.completed);
            }
            scheduler.tick();
            ++now;
            if (machine.cycleSkippingEnabled() &&
                !machine.anyCompletedUntaken()) {
                const Cycle next_poll =
                    (now / poll_interval + 1) * poll_interval;
                const Cycle target =
                    std::min(machine.nextEventCycle(), next_poll);
                if (target > now + 1)
                    now += machine.skipTo(target);
            }
        }
        EXPECT_EQ(stamps.size(), 2u) << "kernels never completed";
        // A coarse poll can pick up both kernels at once, in scheduler
        // bookkeeping order; the invariant is the stamp multiset.
        std::sort(stamps.begin(), stamps.end());
        return stamps;
    };

    const auto reference = run_with_poll(1, false);
    ASSERT_EQ(reference.size(), 2u);
    for (const Cycle interval : {Cycle{1}, Cycle{64}, Cycle{1000}}) {
        for (const bool skipping : {false, true}) {
            EXPECT_EQ(run_with_poll(interval, skipping), reference)
                << "interval " << interval << " skipping " << skipping;
        }
    }
}

} // namespace
} // namespace rcoal::sim
