/**
 * @file
 * Unit tests for the GDDR5 FR-FCFS memory partition model.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/dram.hpp"

namespace rcoal::sim {
namespace {

struct DramFixture : public testing::Test
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    KernelStats stats;

    MemoryAccess
    makeAccess(std::uint64_t id, Addr addr, bool write = false)
    {
        MemoryAccess a;
        a.id = id;
        a.blockAddr = addr;
        a.bytes = 64;
        a.isWrite = write;
        return a;
    }

    DramLocation
    loc(unsigned bank, std::uint64_t row)
    {
        DramLocation l;
        l.partition = 0;
        l.bank = bank;
        l.bankGroup = bank % cfg.bankGroups;
        l.row = row;
        l.column = 0;
        return l;
    }

    /** Run until the access with @p id completes; returns that cycle. */
    Cycle
    runUntilComplete(DramPartition &dram, std::uint64_t id,
                     Cycle start = 0, Cycle limit = 10000)
    {
        for (Cycle c = start; c < limit; ++c) {
            dram.tick(c);
            while (dram.hasCompleted(c)) {
                const MemoryAccess done = dram.popCompleted(c);
                if (done.id == id)
                    return c;
            }
        }
        ADD_FAILURE() << "access " << id << " never completed";
        return 0;
    }
};

TEST_F(DramFixture, ColdAccessLatencyIsActPlusCasPlusBurst)
{
    DramPartition dram(cfg, 0, &stats);
    dram.enqueue(makeAccess(1, 0), loc(0, 0), 0);
    const Cycle done = runUntilComplete(dram, 1);
    // ACT at cycle 0 -> READ ready at tRCD -> data at tCL + burst.
    const Cycle expected = 0 + cfg.timing.tRCD + cfg.timing.tCL +
                           cfg.burstCycles;
    EXPECT_EQ(done, expected);
    EXPECT_EQ(stats.dramActivates, 1u);
    EXPECT_EQ(stats.dramRowMisses, 1u);
    EXPECT_EQ(stats.dramRowHits, 0u);
}

TEST_F(DramFixture, RowHitIsFasterThanRowMiss)
{
    DramPartition dram(cfg, 0, &stats);
    dram.enqueue(makeAccess(1, 0x000), loc(0, 0), 0);
    const Cycle first = runUntilComplete(dram, 1);
    // Same bank, same row: no ACT needed.
    dram.enqueue(makeAccess(2, 0x040), loc(0, 0), first);
    const Cycle second = runUntilComplete(dram, 2, first);
    EXPECT_LT(second - first, cfg.timing.tRCD + cfg.timing.tCL +
                                  cfg.burstCycles);
    EXPECT_EQ(stats.dramRowHits, 1u);
}

TEST_F(DramFixture, RowConflictRequiresPrechargeDelay)
{
    DramPartition dram(cfg, 0, &stats);
    dram.enqueue(makeAccess(1, 0), loc(0, 0), 0);
    const Cycle first = runUntilComplete(dram, 1);
    // Same bank, different row: must wait tRAS, precharge (tRP), ACT
    // (tRCD) before the read.
    dram.enqueue(makeAccess(2, 0), loc(0, 7), first);
    const Cycle second = runUntilComplete(dram, 2, first);
    EXPECT_GE(second - first, cfg.timing.tRP);
    EXPECT_EQ(stats.dramPrecharges, 1u);
    EXPECT_EQ(stats.dramRowMisses, 2u);
}

TEST_F(DramFixture, FrFcfsPrioritizesRowHitOverOlderMiss)
{
    DramPartition dram(cfg, 0, &stats);
    // Open row 0 of bank 0.
    dram.enqueue(makeAccess(1, 0), loc(0, 0), 0);
    const Cycle warm = runUntilComplete(dram, 1);
    // Older request: bank 0, row 5 (conflict). Newer: bank 0, row 0
    // (hit). FR-FCFS services the hit first.
    dram.enqueue(makeAccess(2, 0), loc(0, 5), warm);
    dram.enqueue(makeAccess(3, 0x40), loc(0, 0), warm);
    Cycle done2 = 0;
    Cycle done3 = 0;
    for (Cycle c = warm; c < warm + 1000 && (!done2 || !done3); ++c) {
        dram.tick(c);
        while (dram.hasCompleted(c)) {
            const MemoryAccess done = dram.popCompleted(c);
            (done.id == 2 ? done2 : done3) = c;
        }
    }
    ASSERT_NE(done2, 0u);
    ASSERT_NE(done3, 0u);
    EXPECT_LT(done3, done2);
}

TEST_F(DramFixture, BankParallelismBeatsSerialSameBank)
{
    // Four accesses to four different banks complete sooner than four
    // row-conflicting accesses to one bank.
    KernelStats stats_par;
    DramPartition par(cfg, 0, &stats_par);
    for (unsigned i = 0; i < 4; ++i)
        par.enqueue(makeAccess(i, 0), loc(i, 0), 0);
    Cycle last_par = 0;
    for (unsigned i = 0; i < 4; ++i)
        last_par = std::max(last_par, runUntilComplete(par, i));

    KernelStats stats_ser;
    DramPartition ser(cfg, 0, &stats_ser);
    for (unsigned i = 0; i < 4; ++i)
        ser.enqueue(makeAccess(i, 0), loc(0, i), 0);
    Cycle last_ser = 0;
    for (unsigned i = 0; i < 4; ++i)
        last_ser = std::max(last_ser, runUntilComplete(ser, i));

    EXPECT_LT(last_par, last_ser);
}

TEST_F(DramFixture, DataBusSerializesBursts)
{
    // N row hits to the same open row: completions are spaced at least
    // burstCycles apart (single data bus).
    DramPartition dram(cfg, 0, &stats);
    dram.enqueue(makeAccess(0, 0), loc(0, 0), 0);
    runUntilComplete(dram, 0);
    constexpr unsigned kN = 6;
    for (unsigned i = 1; i <= kN; ++i)
        dram.enqueue(makeAccess(i, Addr{i} * 64), loc(0, 0), 50);
    std::vector<Cycle> completions;
    for (Cycle c = 50; c < 2000 && completions.size() < kN; ++c) {
        dram.tick(c);
        while (dram.hasCompleted(c)) {
            dram.popCompleted(c);
            completions.push_back(c);
        }
    }
    ASSERT_EQ(completions.size(), kN);
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_GE(completions[i] - completions[i - 1], cfg.burstCycles);
}

TEST_F(DramFixture, QueueCapacityHonored)
{
    DramPartition dram(cfg, 0, &stats);
    for (std::size_t i = 0; i < cfg.dramQueueDepth; ++i) {
        ASSERT_TRUE(dram.canAccept());
        dram.enqueue(makeAccess(i, Addr{i} * 64), loc(0, 0), 0);
    }
    EXPECT_FALSE(dram.canAccept());
}

TEST_F(DramFixture, WritesCompleteToo)
{
    DramPartition dram(cfg, 0, &stats);
    dram.enqueue(makeAccess(1, 0, true), loc(0, 0), 0);
    const Cycle done = runUntilComplete(dram, 1);
    EXPECT_GT(done, 0u);
    EXPECT_TRUE(dram.idle());
}

TEST_F(DramFixture, IdleWhenDrained)
{
    DramPartition dram(cfg, 0, &stats);
    EXPECT_TRUE(dram.idle());
    dram.enqueue(makeAccess(1, 0), loc(0, 0), 0);
    EXPECT_FALSE(dram.idle());
    runUntilComplete(dram, 1);
    EXPECT_TRUE(dram.idle());
}

TEST_F(DramFixture, ActToActSameBankRespectsTrc)
{
    DramPartition dram(cfg, 0, &stats);
    // Two different-row requests to one bank: the second ACT cannot
    // happen before tRC after the first.
    dram.enqueue(makeAccess(1, 0), loc(0, 0), 0);
    dram.enqueue(makeAccess(2, 0), loc(0, 3), 0);
    const Cycle second = runUntilComplete(dram, 2);
    // First ACT at 0; second ACT >= tRC; data >= tRC + tRCD + tCL.
    EXPECT_GE(second, cfg.timing.tRC + cfg.timing.tRCD + cfg.timing.tCL);
}

TEST_F(DramFixture, ActToActDifferentBanksRespectsTrrd)
{
    DramPartition dram(cfg, 0, &stats);
    dram.enqueue(makeAccess(1, 0), loc(0, 0), 0);
    dram.enqueue(makeAccess(2, 0), loc(1, 0), 0);
    const Cycle c1 = runUntilComplete(dram, 1);
    const Cycle c2 = runUntilComplete(dram, 2, c1);
    // Second bank's ACT is delayed by tRRD, so its completion trails
    // the first by at least tRRD (bursts permitting).
    EXPECT_GE(c2, cfg.timing.tRRD + cfg.timing.tRCD + cfg.timing.tCL);
}

TEST_F(DramFixture, StatsRowHitRatioForStreamingPattern)
{
    DramPartition dram(cfg, 0, &stats);
    // 8 sequential blocks in one row: 1 miss + 7 hits.
    for (unsigned i = 0; i < 8; ++i)
        dram.enqueue(makeAccess(i, Addr{i} * 64), loc(0, 0), 0);
    for (unsigned i = 0; i < 8; ++i)
        runUntilComplete(dram, i);
    EXPECT_EQ(stats.dramRowMisses, 1u);
    EXPECT_EQ(stats.dramRowHits, 7u);
}

TEST_F(DramFixture, DeathOnEnqueueWhenFull)
{
    DramPartition dram(cfg, 0, &stats);
    for (std::size_t i = 0; i < cfg.dramQueueDepth; ++i)
        dram.enqueue(makeAccess(i, Addr{i} * 64), loc(0, 0), 0);
    EXPECT_DEATH(dram.enqueue(makeAccess(99, 0), loc(0, 0), 0), "full");
}

} // namespace
} // namespace rcoal::sim
