/**
 * @file
 * Unit tests for the address decoder.
 */

#include <gtest/gtest.h>

#include <set>

#include "rcoal/sim/address_mapping.hpp"

namespace rcoal::sim {
namespace {

GpuConfig
baseConfig()
{
    return GpuConfig::paperBaseline();
}

TEST(AddressMapping, InterleavesInChunksOf256Bytes)
{
    const AddressMapping map(baseConfig());
    // Table I: 256-byte chunks rotate across the 6 partitions.
    EXPECT_EQ(map.partitionOf(0), 0u);
    EXPECT_EQ(map.partitionOf(255), 0u);
    EXPECT_EQ(map.partitionOf(256), 1u);
    EXPECT_EQ(map.partitionOf(511), 1u);
    EXPECT_EQ(map.partitionOf(256 * 5), 5u);
    EXPECT_EQ(map.partitionOf(256 * 6), 0u);
}

TEST(AddressMapping, AllPartitionsCovered)
{
    const AddressMapping map(baseConfig());
    std::set<unsigned> seen;
    for (Addr a = 0; a < 6 * 256; a += 256)
        seen.insert(map.partitionOf(a));
    EXPECT_EQ(seen.size(), 6u);
}

TEST(AddressMapping, DecodePartitionConsistent)
{
    const AddressMapping map(baseConfig());
    for (Addr a = 0; a < 100000; a += 123)
        EXPECT_EQ(map.decode(a).partition, map.partitionOf(a));
}

TEST(AddressMapping, ConsecutiveChunksHitDifferentBanks)
{
    const AddressMapping map(baseConfig());
    // Two consecutive chunks of the same partition (stride 6*256).
    const auto a = map.decode(0);
    const auto b = map.decode(6 * 256);
    EXPECT_EQ(a.partition, b.partition);
    EXPECT_NE(a.bank, b.bank);
}

TEST(AddressMapping, BankGroupDerivedFromBank)
{
    const AddressMapping map(baseConfig());
    for (Addr a = 0; a < 200000; a += 4096) {
        const auto loc = map.decode(a);
        EXPECT_EQ(loc.bankGroup, loc.bank % baseConfig().bankGroups);
        EXPECT_LT(loc.bank, baseConfig().banksPerPartition);
    }
}

TEST(AddressMapping, RowAdvancesWithBankStride)
{
    const GpuConfig cfg = baseConfig();
    const AddressMapping map(cfg);
    // chunksPerRow chunks of the same bank fill one row.
    const std::uint64_t chunks_per_row =
        cfg.rowBytes / cfg.partitionInterleaveBytes;
    const Addr bank_stride =
        Addr{cfg.partitionInterleaveBytes} * cfg.numPartitions *
        cfg.banksPerPartition;
    const auto first = map.decode(0);
    const auto same_row = map.decode(bank_stride * (chunks_per_row - 1));
    EXPECT_EQ(same_row.bank, first.bank);
    EXPECT_EQ(same_row.row, first.row);
    const auto next_row = map.decode(bank_stride * chunks_per_row);
    EXPECT_EQ(next_row.bank, first.bank);
    EXPECT_EQ(next_row.row, first.row + 1);
}

TEST(AddressMapping, ColumnWithinRowBounds)
{
    const GpuConfig cfg = baseConfig();
    const AddressMapping map(cfg);
    for (Addr a = 0; a < 1000000; a += 97)
        EXPECT_LT(map.decode(a).column, cfg.rowBytes);
}

TEST(AddressMapping, DistinctAddressesDistinctCoordinates)
{
    // The decode must be injective on (partition, bank, row, column).
    const AddressMapping map(baseConfig());
    std::set<std::tuple<unsigned, unsigned, std::uint64_t,
                        std::uint32_t>>
        seen;
    for (Addr a = 0; a < 64 * 1024; a += 64) {
        const auto loc = map.decode(a);
        EXPECT_TRUE(
            seen.insert({loc.partition, loc.bank, loc.row, loc.column})
                .second)
            << "collision at addr " << a;
    }
}

TEST(AddressMapping, AesTableSpansFourPartitions)
{
    // A 1 KiB T-table covers 4 consecutive 256-byte chunks, i.e. 4
    // different partitions - the parallelism the AES kernel relies on.
    const AddressMapping map(baseConfig());
    std::set<unsigned> parts;
    for (Addr a = 0x1000; a < 0x1400; a += 64)
        parts.insert(map.partitionOf(a));
    EXPECT_EQ(parts.size(), 4u);
}

} // namespace
} // namespace rcoal::sim
