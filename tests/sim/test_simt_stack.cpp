/**
 * @file
 * Unit tests for the SIMT reconvergence stack.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/simt_stack.hpp"

namespace rcoal::sim {
namespace {

TEST(LaneMaskHelpers, FullMask)
{
    EXPECT_EQ(fullMask(1), 0x1u);
    EXPECT_EQ(fullMask(4), 0xfu);
    EXPECT_EQ(fullMask(32), 0xffffffffu);
    EXPECT_EQ(fullMask(64), ~std::uint64_t{0});
}

TEST(SimtStack, StartsConverged)
{
    SimtStack stack(32);
    EXPECT_EQ(stack.activeMask(), fullMask(32));
    EXPECT_EQ(stack.depth(), 0u);
    EXPECT_EQ(stack.reconvergencePc(), SimtStack::kNoReconvergence);
    for (ThreadId t = 0; t < 32; ++t)
        EXPECT_TRUE(stack.isActive(t));
}

TEST(SimtStack, UniformBranchesDoNotPush)
{
    SimtStack stack(32);
    // All lanes take: continue at the taken pc, no push.
    EXPECT_EQ(stack.diverge(fullMask(32), 100, 5, 200), 100u);
    EXPECT_EQ(stack.depth(), 0u);
    // No lane takes: continue at the fall-through pc.
    EXPECT_EQ(stack.diverge(0, 100, 5, 200), 5u);
    EXPECT_EQ(stack.depth(), 0u);
}

TEST(SimtStack, DivergeExecutesTakenSideFirst)
{
    SimtStack stack(4);
    const LaneMask taken = 0b0011;
    EXPECT_EQ(stack.diverge(taken, 100, 5, 200), 100u);
    EXPECT_EQ(stack.depth(), 1u);
    EXPECT_EQ(stack.activeMask(), taken);
    EXPECT_EQ(stack.reconvergencePc(), 200u);
}

TEST(SimtStack, ReconvergeSwitchesToDeferredSideThenJoins)
{
    SimtStack stack(4);
    stack.diverge(0b0011, 100, 5, 200);
    // Taken side reaches the post-dominator: switch to the else side,
    // resuming at the fall-through pc.
    EXPECT_EQ(stack.reconverge(200), 5u);
    EXPECT_EQ(stack.activeMask(), 0b1100u);
    EXPECT_EQ(stack.depth(), 1u);
    // Else side reaches the post-dominator: join and continue there.
    EXPECT_EQ(stack.reconverge(200), 200u);
    EXPECT_EQ(stack.activeMask(), fullMask(4));
    EXPECT_EQ(stack.depth(), 0u);
}

TEST(SimtStack, ReconvergeAtOtherPcIsANoop)
{
    SimtStack stack(4);
    stack.diverge(0b0001, 100, 5, 200);
    EXPECT_EQ(stack.reconverge(150), 150u);
    EXPECT_EQ(stack.activeMask(), 0b0001u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack stack(8);
    // Outer branch splits 0..3 vs 4..7.
    stack.diverge(0x0f, 100, 50, 500);
    EXPECT_EQ(stack.activeMask(), 0x0fu);
    // Inner branch on the taken side splits 0..1 vs 2..3.
    stack.diverge(0x03, 110, 105, 300);
    EXPECT_EQ(stack.activeMask(), 0x03u);
    EXPECT_EQ(stack.depth(), 2u);
    // Inner join.
    EXPECT_EQ(stack.reconverge(300), 105u);
    EXPECT_EQ(stack.activeMask(), 0x0cu);
    EXPECT_EQ(stack.reconverge(300), 300u);
    EXPECT_EQ(stack.activeMask(), 0x0fu);
    EXPECT_EQ(stack.depth(), 1u);
    // Outer join.
    EXPECT_EQ(stack.reconverge(500), 50u);
    EXPECT_EQ(stack.activeMask(), 0xf0u);
    EXPECT_EQ(stack.reconverge(500), 500u);
    EXPECT_EQ(stack.activeMask(), fullMask(8));
}

TEST(SimtStack, ExitLanesShrinksAllEntries)
{
    SimtStack stack(4);
    stack.diverge(0b0011, 100, 5, 200);
    stack.exitLanes(0b0001);
    EXPECT_EQ(stack.activeMask(), 0b0010u);
    stack.reconverge(200);             // switch to else side
    EXPECT_EQ(stack.activeMask(), 0b1100u);
    stack.reconverge(200);             // join
    EXPECT_EQ(stack.activeMask(), 0b1110u); // lane 0 stays dead
}

TEST(SimtStack, ExitAllLanesOfBothSidesPopsEntry)
{
    SimtStack stack(4);
    stack.diverge(0b0011, 100, 5, 200);
    stack.exitLanes(0b1111);
    EXPECT_EQ(stack.depth(), 0u);
    EXPECT_EQ(stack.activeMask(), 0u);
}

TEST(SimtStackDeathTest, TakenMaskMustBeSubsetOfActive)
{
    SimtStack stack(4);
    stack.diverge(0b0011, 100, 5, 200); // active = 0b0011
    EXPECT_DEATH(stack.diverge(0b1000, 100, 5, 300), "inactive");
}

TEST(SimtStackDeathTest, LaneRangeChecked)
{
    SimtStack stack(4);
    EXPECT_DEATH(stack.isActive(9), "out of range");
    EXPECT_DEATH(fullMask(0), "1..64");
    EXPECT_DEATH(fullMask(65), "1..64");
}

} // namespace
} // namespace rcoal::sim
