/**
 * @file
 * End-to-end tests of the GPU model on synthetic kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::sim {
namespace {

GpuConfig
baseConfig()
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 7;
    return cfg;
}

TEST(Gpu, AluOnlyKernelTakesItsLatency)
{
    std::vector<std::vector<WarpInstruction>> traces(1);
    traces[0].push_back(WarpInstruction::alu(10));
    traces[0].push_back(WarpInstruction::alu(10));
    const VectorKernel kernel(std::move(traces));
    Gpu gpu(baseConfig());
    const KernelStats stats = gpu.launch(kernel);
    EXPECT_EQ(stats.warpInstructions, 2u);
    EXPECT_EQ(stats.coalescedAccesses, 0u);
    // Two dependent 10-cycle ALU batches: at least 20 cycles.
    EXPECT_GE(stats.cycles, 20u);
    EXPECT_LT(stats.cycles, 40u);
}

TEST(Gpu, SingleLoadRoundTrip)
{
    std::vector<std::vector<WarpInstruction>> traces(1);
    std::vector<core::LaneRequest> lanes{{0, 0x1000, 4, true}};
    traces[0].push_back(
        WarpInstruction::load(lanes, AccessTag::Generic));
    traces[0].push_back(WarpInstruction::alu(1, true));
    const VectorKernel kernel(std::move(traces));
    Gpu gpu(baseConfig());
    const KernelStats stats = gpu.launch(kernel);
    EXPECT_EQ(stats.coalescedAccesses, 1u);
    EXPECT_EQ(stats.loadAccesses, 1u);
    // Round trip: 2x interconnect latency + DRAM ACT+CAS+burst.
    EXPECT_GT(stats.cycles, 30u);
    EXPECT_LT(stats.cycles, 200u);
}

TEST(Gpu, StreamingKernelCoalescesPerfectly)
{
    const auto kernel = workloads::makeStreamingKernel(2, 10, 32);
    Gpu gpu(baseConfig());
    const KernelStats stats = gpu.launch(*kernel);
    // 32 consecutive 4-byte words = 128 bytes = 2 blocks of 64 bytes.
    EXPECT_EQ(stats.coalescedAccesses, 2u * 10u * 2u);
}

TEST(Gpu, StridedKernelAccessCountScalesWithStride)
{
    Gpu gpu(baseConfig());
    // 4-byte stride: fully coalesced, 2 accesses per load.
    const auto dense = workloads::makeStridedKernel(1, 8, 32, 4);
    // 64-byte stride: one block per lane, 32 accesses per load.
    const auto sparse = workloads::makeStridedKernel(1, 8, 32, 64);
    const auto dense_stats = gpu.launch(*dense);
    const auto sparse_stats = gpu.launch(*sparse);
    EXPECT_EQ(dense_stats.coalescedAccesses, 8u * 2u);
    EXPECT_EQ(sparse_stats.coalescedAccesses, 8u * 32u);
    EXPECT_GT(sparse_stats.cycles, dense_stats.cycles);
}

TEST(Gpu, DisabledCoalescingGeneratesOneAccessPerLane)
{
    GpuConfig cfg = baseConfig();
    cfg.policy = core::CoalescingPolicy::disabled();
    Gpu gpu(cfg);
    const auto kernel = workloads::makeStreamingKernel(1, 4, 32);
    const KernelStats stats = gpu.launch(*kernel);
    EXPECT_EQ(stats.coalescedAccesses, 4u * 32u);
}

TEST(Gpu, FssSubwarpsIncreaseAccessCount)
{
    const auto kernel = workloads::makeStreamingKernel(1, 10, 32);
    GpuConfig cfg = baseConfig();
    std::uint64_t prev = 0;
    for (unsigned m : {1u, 4u, 16u, 32u}) {
        cfg.policy = m == 1 ? core::CoalescingPolicy::baseline()
                            : core::CoalescingPolicy::fss(m);
        Gpu gpu(cfg);
        const auto stats = gpu.launch(*kernel);
        EXPECT_GE(stats.coalescedAccesses, prev) << "M=" << m;
        prev = stats.coalescedAccesses;
    }
    // M = 32 on a fully-coalescable stream: one access per lane.
    EXPECT_EQ(prev, 10u * 32u);
}

TEST(Gpu, MultiWarpKernelsDistributeAcrossSms)
{
    // More warps than SMs must still complete, faster than serial.
    Gpu gpu(baseConfig());
    const auto one = workloads::makeStreamingKernel(1, 20, 32);
    const auto thirty = workloads::makeStreamingKernel(30, 20, 32);
    const auto one_stats = gpu.launch(*one);
    const auto thirty_stats = gpu.launch(*thirty);
    EXPECT_EQ(thirty_stats.coalescedAccesses,
              30 * one_stats.coalescedAccesses);
    // 30 warps on 15 SMs: nowhere near 30x the single-warp time.
    EXPECT_LT(thirty_stats.cycles, one_stats.cycles * 10);
}

TEST(Gpu, DeterministicAcrossIdenticalRuns)
{
    const auto kernel = workloads::makeStreamingKernel(3, 10, 32);
    Gpu a(baseConfig());
    Gpu b(baseConfig());
    const auto sa = a.launch(*kernel);
    const auto sb = b.launch(*kernel);
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.coalescedAccesses, sb.coalescedAccesses);
    EXPECT_EQ(sa.dramRowHits, sb.dramRowHits);
}

TEST(Gpu, RandomPolicyVariesAcrossLaunchesWithinOneGpu)
{
    GpuConfig cfg = baseConfig();
    cfg.policy = core::CoalescingPolicy::rss(4, true);
    Gpu gpu(cfg);
    Rng rng(3);
    const auto kernel = workloads::makeRandomKernel(1, 10, 32, 256, rng);
    std::set<std::uint64_t> counts;
    for (int i = 0; i < 10; ++i)
        counts.insert(gpu.launch(*kernel).coalescedAccesses);
    EXPECT_GT(counts.size(), 3u);
}

TEST(Gpu, InactiveLanesProduceNoAccesses)
{
    std::vector<std::vector<WarpInstruction>> traces(1);
    std::vector<core::LaneRequest> lanes(32);
    for (ThreadId t = 0; t < 32; ++t)
        lanes[t] = {t, 0x1000 + Addr{t} * 4, 4, t < 4};
    traces[0].push_back(WarpInstruction::load(lanes, AccessTag::Generic));
    traces[0].push_back(WarpInstruction::alu(1, true));
    const VectorKernel kernel(std::move(traces));
    Gpu gpu(baseConfig());
    const auto stats = gpu.launch(kernel);
    EXPECT_EQ(stats.coalescedAccesses, 1u);
    EXPECT_EQ(stats.tagStats(AccessTag::Generic).laneRequests, 4u);
}

TEST(Gpu, StoresAreCountedButNotBlocking)
{
    std::vector<std::vector<WarpInstruction>> traces(1);
    std::vector<core::LaneRequest> lanes{{0, 0x2000, 4, true}};
    traces[0].push_back(
        WarpInstruction::store(lanes, AccessTag::CiphertextStore));
    const VectorKernel kernel(std::move(traces));
    Gpu gpu(baseConfig());
    const auto stats = gpu.launch(kernel);
    EXPECT_EQ(stats.storeAccesses, 1u);
    EXPECT_EQ(stats.loadAccesses, 0u);
    // The write still drains through DRAM before the launch ends.
    EXPECT_GT(stats.tagStats(AccessTag::CiphertextStore).lastComplete,
              0u);
}

TEST(Gpu, TagWindowsAreOrdered)
{
    const auto kernel = workloads::makeStreamingKernel(1, 5, 32);
    Gpu gpu(baseConfig());
    const auto stats = gpu.launch(*kernel);
    const auto &tag = stats.tagStats(AccessTag::Generic);
    EXPECT_NE(tag.firstIssue, kInvalidCycle);
    EXPECT_GE(tag.lastComplete, tag.firstIssue);
    EXPECT_LE(tag.lastComplete, stats.cycles);
}

TEST(Gpu, L1CacheReducesTrafficOnRepeatedAccesses)
{
    // Same address loaded repeatedly: with L1 on, DRAM sees one access.
    std::vector<std::vector<WarpInstruction>> traces(1);
    for (int i = 0; i < 8; ++i) {
        std::vector<core::LaneRequest> lanes{{0, 0x1000, 4, true}};
        traces[0].push_back(
            WarpInstruction::load(lanes, AccessTag::Generic));
        traces[0].push_back(WarpInstruction::alu(1, true));
    }
    const VectorKernel kernel(std::move(traces));

    GpuConfig cfg = baseConfig();
    cfg.l1Enabled = true;
    Gpu with_l1(cfg);
    const auto stats = with_l1.launch(kernel);
    EXPECT_EQ(stats.l1Misses, 1u);
    EXPECT_EQ(stats.l1Hits, 7u);

    Gpu without(baseConfig());
    const auto stats_off = without.launch(kernel);
    EXPECT_EQ(stats_off.l1Hits, 0u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_LT(stats.cycles, stats_off.cycles);
}

TEST(Gpu, MshrMergesConcurrentSameBlockLoads)
{
    // Two warps hitting the same block with loads in flight: MSHR
    // merges the second request.
    std::vector<std::vector<WarpInstruction>> traces(2);
    for (auto &trace : traces) {
        std::vector<core::LaneRequest> lanes{{0, 0x3000, 4, true}};
        trace.push_back(WarpInstruction::load(lanes, AccessTag::Generic));
        trace.push_back(WarpInstruction::alu(1, true));
    }
    const VectorKernel kernel(std::move(traces));

    GpuConfig cfg = baseConfig();
    cfg.numSms = 1; // both warps on one SM so the MSHR sees both
    cfg.l1Enabled = true;
    cfg.mshrEnabled = true;
    Gpu gpu(cfg);
    const auto stats = gpu.launch(kernel);
    EXPECT_EQ(stats.mshrMerges, 1u);
    EXPECT_EQ(stats.l1Misses, 2u);
    // Only one access traveled to DRAM.
    EXPECT_EQ(stats.dramRowHits + stats.dramRowMisses, 1u);
}

TEST(Gpu, L2CacheServicesRepeatedMissesFromDifferentSms)
{
    // Two warps on two SMs read the same block; with L2 on, the second
    // read hits in L2 and DRAM services only one access.
    std::vector<std::vector<WarpInstruction>> traces(2);
    for (auto &trace : traces) {
        std::vector<core::LaneRequest> lanes{{0, 0x4000, 4, true}};
        // Padding ALU so the second warp's load trails the first's fill.
        trace.push_back(WarpInstruction::alu(1));
        trace.push_back(WarpInstruction::load(lanes, AccessTag::Generic));
        trace.push_back(WarpInstruction::alu(1, true));
    }
    // Delay warp 1 so its request arrives after the fill.
    traces[1].insert(traces[1].begin(), WarpInstruction::alu(300));
    const VectorKernel kernel(std::move(traces));

    GpuConfig cfg = baseConfig();
    cfg.l2Enabled = true;
    Gpu gpu(cfg);
    const auto stats = gpu.launch(kernel);
    EXPECT_EQ(stats.l2Hits, 1u);
    EXPECT_EQ(stats.l2Misses, 1u);
    EXPECT_EQ(stats.dramRowHits + stats.dramRowMisses, 1u);
}

TEST(GpuDeathTest, TooManyWarpsPanics)
{
    GpuConfig cfg = baseConfig();
    cfg.numSms = 1;
    cfg.maxWarpsPerSm = 2;
    Gpu gpu(cfg);
    const auto kernel = workloads::makeStreamingKernel(3, 1, 32);
    EXPECT_DEATH(gpu.launch(*kernel), "warp");
}

} // namespace
} // namespace rcoal::sim
