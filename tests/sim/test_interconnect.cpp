/**
 * @file
 * Unit tests for the crossbar interconnect.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/interconnect.hpp"

namespace rcoal::sim {
namespace {

MemoryAccess
accessWithId(std::uint64_t id)
{
    MemoryAccess a;
    a.id = id;
    return a;
}

TEST(Crossbar, DeliversAfterTraversalLatency)
{
    Crossbar xbar(2, 2, 8, 16);
    xbar.inject(0, 1, accessWithId(7), 0);
    for (Cycle c = 1; c <= 7; ++c) {
        xbar.tick(c);
        EXPECT_FALSE(xbar.outputReady(1)) << "cycle " << c;
    }
    xbar.tick(8);
    ASSERT_TRUE(xbar.outputReady(1));
    EXPECT_EQ(xbar.popOutput(1).id, 7u);
    EXPECT_TRUE(xbar.idle());
}

TEST(Crossbar, OnePacketPerOutputPerCycle)
{
    Crossbar xbar(4, 1, 1, 16);
    for (unsigned in = 0; in < 4; ++in)
        xbar.inject(in, 0, accessWithId(in), 0);
    unsigned delivered = 0;
    for (Cycle c = 1; c <= 10 && delivered < 4; ++c) {
        xbar.tick(c);
        unsigned this_cycle = 0;
        while (xbar.outputReady(0)) {
            xbar.popOutput(0);
            ++this_cycle;
        }
        EXPECT_LE(this_cycle, 1u);
        delivered += this_cycle;
    }
    EXPECT_EQ(delivered, 4u);
}

TEST(Crossbar, DistinctOutputsProgressInParallel)
{
    Crossbar xbar(2, 2, 1, 16);
    xbar.inject(0, 0, accessWithId(1), 0);
    xbar.inject(1, 1, accessWithId(2), 0);
    xbar.tick(1);
    EXPECT_TRUE(xbar.outputReady(0));
    EXPECT_TRUE(xbar.outputReady(1));
}

TEST(Crossbar, FifoOrderWithinInput)
{
    Crossbar xbar(1, 1, 1, 16);
    xbar.inject(0, 0, accessWithId(1), 0);
    xbar.inject(0, 0, accessWithId(2), 0);
    xbar.inject(0, 0, accessWithId(3), 0);
    std::vector<std::uint64_t> order;
    for (Cycle c = 1; c <= 10 && order.size() < 3; ++c) {
        xbar.tick(c);
        while (xbar.outputReady(0))
            order.push_back(xbar.popOutput(0).id);
    }
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Crossbar, InputBackpressure)
{
    Crossbar xbar(1, 1, 1, 2);
    EXPECT_TRUE(xbar.canInject(0));
    xbar.inject(0, 0, accessWithId(1), 0);
    xbar.inject(0, 0, accessWithId(2), 0);
    EXPECT_FALSE(xbar.canInject(0));
}

TEST(Crossbar, OutputQueueBackpressureStallsTransfer)
{
    Crossbar xbar(1, 1, 1, 2);
    xbar.inject(0, 0, accessWithId(1), 0);
    xbar.inject(0, 0, accessWithId(2), 0);
    // Move both to the output queue (capacity 2), never popping.
    xbar.tick(1);
    xbar.tick(2);
    // Input is free again; two more fill the input.
    xbar.inject(0, 0, accessWithId(3), 2);
    xbar.inject(0, 0, accessWithId(4), 2);
    // Output queue is full: nothing moves.
    xbar.tick(10);
    EXPECT_FALSE(xbar.canInject(0));
    // Draining the output unblocks the pipeline.
    xbar.popOutput(0);
    xbar.tick(11);
    EXPECT_TRUE(xbar.canInject(0));
}

TEST(Crossbar, ArbitrationIsFairUnderContention)
{
    // Two inputs hammer one output; both should make progress at
    // similar rates.
    Crossbar xbar(2, 1, 1, 4);
    std::array<unsigned, 2> delivered{};
    Cycle now = 0;
    for (int round = 0; round < 200; ++round) {
        ++now;
        for (unsigned in = 0; in < 2; ++in) {
            if (xbar.canInject(in))
                xbar.inject(in, 0, accessWithId(in), now);
        }
        xbar.tick(now);
        while (xbar.outputReady(0))
            ++delivered[xbar.popOutput(0).id];
    }
    EXPECT_GT(delivered[0], 50u);
    EXPECT_GT(delivered[1], 50u);
}

TEST(Crossbar, RoundRobinSharesOneOutputEvenly)
{
    // Four saturated inputs into one output: the (scalar) round-robin
    // pointer must hand out grants evenly, not favour low input ids.
    constexpr unsigned kInputs = 4;
    constexpr unsigned kRounds = 400;
    Crossbar xbar(kInputs, 1, 1, 4);
    std::array<unsigned, kInputs> delivered{};
    Cycle now = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        ++now;
        for (unsigned in = 0; in < kInputs; ++in) {
            if (xbar.canInject(in))
                xbar.inject(in, 0, accessWithId(in), now);
        }
        xbar.tick(now);
        while (xbar.outputReady(0))
            ++delivered[xbar.popOutput(0).id];
    }
    unsigned total = 0;
    for (unsigned in = 0; in < kInputs; ++in)
        total += delivered[in];
    // One grant per cycle, so ~kRounds packets split four ways; allow
    // slack for pipeline fill but not for starvation or heavy skew.
    EXPECT_GE(total, kRounds - 2 * kInputs);
    for (unsigned in = 0; in < kInputs; ++in) {
        EXPECT_GE(delivered[in], kRounds / kInputs - 5) << "input " << in;
        EXPECT_LE(delivered[in], kRounds / kInputs + 5) << "input " << in;
    }
}

TEST(Crossbar, PacketCountTracksTransfers)
{
    Crossbar xbar(1, 1, 1, 8);
    xbar.inject(0, 0, accessWithId(1), 0);
    xbar.tick(1);
    EXPECT_EQ(xbar.packetsTransferred(), 1u);
}

TEST(Crossbar, IdleReflectsOccupancy)
{
    Crossbar xbar(1, 1, 4, 8);
    EXPECT_TRUE(xbar.idle());
    xbar.inject(0, 0, accessWithId(1), 0);
    EXPECT_FALSE(xbar.idle());
    for (Cycle c = 1; c <= 4; ++c)
        xbar.tick(c);
    EXPECT_FALSE(xbar.idle()); // sitting in the output queue
    xbar.popOutput(0);
    EXPECT_TRUE(xbar.idle());
}

TEST(CrossbarDeathTest, InvalidPortsPanic)
{
    Crossbar xbar(2, 2, 1, 4);
    EXPECT_DEATH(xbar.canInject(5), "out of range");
    EXPECT_DEATH(xbar.popOutput(0), "empty");
}

} // namespace
} // namespace rcoal::sim
