/**
 * @file
 * Unit tests for GpuConfig validation and description.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/config.hpp"

namespace rcoal::sim {
namespace {

TEST(GpuConfig, PaperBaselineMatchesTableOne)
{
    const GpuConfig cfg = GpuConfig::paperBaseline();
    EXPECT_EQ(cfg.numSms, 15u);
    EXPECT_EQ(cfg.warpSize, 32u);
    EXPECT_EQ(cfg.issueWidth, 2u); // SIMT width 32 = 16 x 2
    EXPECT_DOUBLE_EQ(cfg.coreClockMhz, 1400.0);
    EXPECT_DOUBLE_EQ(cfg.memClockMhz, 924.0);
    EXPECT_EQ(cfg.numPartitions, 6u);
    EXPECT_EQ(cfg.partitionInterleaveBytes, 256u);
    EXPECT_EQ(cfg.banksPerPartition, 16u);
    EXPECT_EQ(cfg.bankGroups, 4u);
    EXPECT_EQ(cfg.timing.tCL, 12u);
    EXPECT_EQ(cfg.timing.tRP, 12u);
    EXPECT_EQ(cfg.timing.tRC, 40u);
    EXPECT_EQ(cfg.timing.tRAS, 28u);
    EXPECT_EQ(cfg.timing.tCCD, 2u);
    EXPECT_EQ(cfg.timing.tRCD, 12u);
    EXPECT_EQ(cfg.timing.tRRD, 6u);
    // The paper disables the bandwidth-saving features (Section VII).
    EXPECT_FALSE(cfg.l1Enabled);
    EXPECT_FALSE(cfg.l2Enabled);
    EXPECT_FALSE(cfg.mshrEnabled);
    // Baseline attack model: one subwarp per coalescing unit.
    EXPECT_EQ(cfg.policy.mechanism, core::Mechanism::Baseline);
    cfg.validate();
}

TEST(GpuConfig, DescribeMentionsKeyParameters)
{
    const std::string text = GpuConfig::paperBaseline().describe();
    for (const char *needle :
         {"15 SMs", "1400 MHz", "924 MHz", "FR-FCFS", "tCL=12",
          "256-byte interleave", "Baseline"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing: " << needle;
    }
}

TEST(GpuConfigDeathTest, RejectsBadGeometry)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.coalesceBlockBytes = 48;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "power of two");

    cfg = GpuConfig::paperBaseline();
    cfg.partitionInterleaveBytes = 32; // < block size
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "interleave");

    cfg = GpuConfig::paperBaseline();
    cfg.banksPerPartition = 6; // not a multiple of 4 groups
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "multiple");

    cfg = GpuConfig::paperBaseline();
    cfg.rowBytes = 64; // smaller than the interleave chunk
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "row size");

    cfg = GpuConfig::paperBaseline();
    cfg.prtEntries = 8; // cannot hold one lane each
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "PRT");

    cfg = GpuConfig::paperBaseline();
    cfg.numSms = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "positive");

    cfg = GpuConfig::paperBaseline();
    cfg.policy = core::CoalescingPolicy::fss(64); // > warp size
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "num-subwarp");
}

TEST(GpuConfigDeathTest, RejectsZeroSmsWithActionableMessage)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numSms = 0;
    // The message must name the field and echo the offending value.
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "numSms.*positive.*got 0");
}

TEST(GpuConfigDeathTest, RejectsZeroPartitionsWithActionableMessage)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.numPartitions = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "numPartitions.*positive");
}

TEST(GpuConfigDeathTest, RejectsNonPowerOfTwoWarpSize)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.warpSize = 24;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "warpSize must be a power of two \\(got 24\\)");
}

TEST(GpuConfigDeathTest, RejectsWarpSizeBeyondInlinePrtCapacity)
{
    // MemoryAccess carries its PRT release indices in a fixed inline
    // array sized for one lane per warp thread; a wider warp must be
    // rejected up front rather than overflowing on the hot path.
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.warpSize = 64;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "inline PRT index capacity");
}

TEST(GpuConfigDeathTest, RejectsTooManyBanks)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.banksPerPartition = 128;
    cfg.bankGroups = 4;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1), "64 banks");
}

TEST(GpuConfigDeathTest, RejectsBadCacheGeometry)
{
    // Cache geometry is validated even while the caches are disabled,
    // so a bad override fails at construction, not when a bench later
    // flips l1Enabled. Each message names the offending level.
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.l1.ways = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "L1 associativity must be >= 1");

    cfg = GpuConfig::paperBaseline();
    cfg.l2.sectorBytes = 48; // 128 B lines don't split into 48 B sectors.
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "L2 lineBytes \\(128\\) must be a positive multiple of "
                "sectorBytes \\(48\\)");

    cfg = GpuConfig::paperBaseline();
    cfg.l1.sectorBytes = 2; // 64 sectors per 128 B line.
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "at most 32 supported");

    cfg = GpuConfig::paperBaseline();
    cfg.l1.sizeBytes = 1000; // Not line-aligned.
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "L1 sizeBytes \\(1000\\) must be a positive multiple");

    cfg = GpuConfig::paperBaseline();
    cfg.l1.sizeBytes = 256; // 2 lines for 4 ways.
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "too small for its associativity");

    cfg = GpuConfig::paperBaseline();
    cfg.l1.lineBytes = 32; // Smaller than the 64 B coalescing block.
    cfg.l1.sectorBytes = 32;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "multiple of.*coalesceBlockBytes");

    cfg = GpuConfig::paperBaseline();
    cfg.l2.hitLatency = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "L2 hitLatency must be >= 1");

    cfg = GpuConfig::paperBaseline();
    cfg.l1.streamingReservations = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "streamingReservations must be >= 1");
}

TEST(GpuConfigDeathTest, RejectsInvertedCacheCapacities)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.l2.sizeBytes = 16 * 1024; // Below the 32 KiB L1.
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "L2 capacity.*must be >= L1 capacity");

    cfg = GpuConfig::paperBaseline();
    cfg.l2MshrEntries = 0;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "l2MshrEntries must be positive");
}

TEST(GpuConfig, DescribeNamesTheDramBackend)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    EXPECT_NE(cfg.describe().find("GDDR5"), std::string::npos);
    // The default backend prints the Table I timing line verbatim.
    EXPECT_NE(cfg.describe().find("tCL=12"), std::string::npos);

    cfg.dramBackend = DramBackendKind::Gddr6;
    EXPECT_NE(cfg.describe().find("GDDR6"), std::string::npos);
    cfg.dramBackend = DramBackendKind::Hbm2;
    EXPECT_NE(cfg.describe().find("HBM2"), std::string::npos);
}

TEST(GpuConfig, DescribeMentionsCacheGeometry)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.l1Enabled = cfg.l2Enabled = true;
    const std::string text = cfg.describe();
    EXPECT_NE(text.find("32 KiB"), std::string::npos) << text;
    EXPECT_NE(text.find("128 KiB"), std::string::npos) << text;
}

} // namespace
} // namespace rcoal::sim
