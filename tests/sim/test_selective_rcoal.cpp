/**
 * @file
 * Tests for selective RCoal (Section VII future work): the randomized
 * partition is applied only to protected instruction tags.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::sim {
namespace {

constexpr std::uint32_t
tagBit(AccessTag tag)
{
    return 1u << static_cast<unsigned>(tag);
}

GpuConfig
selectiveConfig(core::CoalescingPolicy policy, std::uint32_t mask)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 5;
    cfg.policy = policy;
    cfg.selectiveRCoal = true;
    cfg.protectedTagMask = mask;
    return cfg;
}

KernelStats
runAes(const GpuConfig &cfg, unsigned lines = 32)
{
    Rng rng(3);
    const std::array<std::uint8_t, 16> key{1, 2, 3, 4};
    const auto plaintext = workloads::randomPlaintext(lines, rng);
    const workloads::AesGpuKernel kernel(plaintext, key, cfg.warpSize);
    Gpu gpu(cfg);
    return gpu.launch(kernel);
}

TEST(SelectiveRcoal, ProtectingNothingMatchesBaseline)
{
    const auto selective = runAes(
        selectiveConfig(core::CoalescingPolicy::fss(16, true), 0));
    GpuConfig base = GpuConfig::paperBaseline();
    base.seed = 5;
    const auto baseline = runAes(base);
    EXPECT_EQ(selective.coalescedAccesses, baseline.coalescedAccesses);
    EXPECT_EQ(selective.cycles, baseline.cycles);
}

TEST(SelectiveRcoal, ProtectingEverythingMatchesFullPolicy)
{
    const std::uint32_t all = 0xffffffffu;
    const auto selective = runAes(
        selectiveConfig(core::CoalescingPolicy::fss(16), all));
    GpuConfig full = GpuConfig::paperBaseline();
    full.seed = 5;
    full.policy = core::CoalescingPolicy::fss(16);
    const auto whole = runAes(full);
    EXPECT_EQ(selective.coalescedAccesses, whole.coalescedAccesses);
    EXPECT_EQ(selective.cycles, whole.cycles);
}

TEST(SelectiveRcoal, LastRoundOnlyInflatesOnlyLastRoundAccesses)
{
    GpuConfig base = GpuConfig::paperBaseline();
    base.seed = 5;
    const auto baseline = runAes(base);
    const auto selective = runAes(selectiveConfig(
        core::CoalescingPolicy::fss(16),
        tagBit(AccessTag::LastRoundLookup)));

    // Round 1..9 lookups keep baseline coalescing.
    EXPECT_EQ(selective.tagStats(AccessTag::RoundLookup).accesses,
              baseline.tagStats(AccessTag::RoundLookup).accesses);
    EXPECT_EQ(selective.tagStats(AccessTag::PlaintextLoad).accesses,
              baseline.tagStats(AccessTag::PlaintextLoad).accesses);
    // The protected last round inflates toward one access per lane.
    EXPECT_GT(selective.lastRoundAccesses(),
              baseline.lastRoundAccesses() * 2);
}

TEST(SelectiveRcoal, MuchCheaperThanWholeKernelProtection)
{
    GpuConfig full_cfg = GpuConfig::paperBaseline();
    full_cfg.seed = 5;
    full_cfg.policy = core::CoalescingPolicy::fss(16, true);
    const auto full = runAes(full_cfg);
    const auto selective = runAes(selectiveConfig(
        core::CoalescingPolicy::fss(16, true),
        tagBit(AccessTag::LastRoundLookup)));
    GpuConfig base = GpuConfig::paperBaseline();
    base.seed = 5;
    const auto baseline = runAes(base);

    // Selective protection costs strictly less than whole-kernel
    // protection and sits between baseline and full.
    EXPECT_LT(selective.cycles, full.cycles);
    EXPECT_GT(selective.cycles, baseline.cycles);
    const double full_overhead =
        static_cast<double>(full.cycles) / baseline.cycles - 1.0;
    const double selective_overhead =
        static_cast<double>(selective.cycles) / baseline.cycles - 1.0;
    EXPECT_LT(selective_overhead, full_overhead / 2.0);
}

TEST(SelectiveRcoal, DefaultMaskProtectsLastRound)
{
    const GpuConfig cfg;
    EXPECT_EQ(cfg.protectedTagMask,
              tagBit(AccessTag::LastRoundLookup));
    EXPECT_FALSE(cfg.selectiveRCoal); // opt-in
}

} // namespace
} // namespace rcoal::sim
