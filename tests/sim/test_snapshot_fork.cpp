/**
 * @file
 * Snapshot/fork determinism suite.
 *
 * Three families of guarantees, all expressed as byte identity:
 *  - reset-vs-fresh: GpuMachine::reset() leaves no residue — the
 *    snapshot of a reset machine equals that of a fresh one (the gate
 *    for the reset-path audit);
 *  - fork-vs-replay: restoring a warmed snapshot is indistinguishable
 *    from re-simulating the warm-up prefix, for observations,
 *    KernelStats, post-run machine state, telemetry exposition, and
 *    DRAM-protocol-checker verdicts;
 *  - schedule independence: the above holds across cycle-skipping
 *    on/off and any thread-pool worker count.
 *
 * Every test name matches the "*Snapshot*:*Fork*" TSan filter, so the
 * whole suite also runs under ThreadSanitizer in CI.
 */

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "rcoal/attack/encryption_service.hpp"
#include "rcoal/common/thread_pool.hpp"
#include "rcoal/core/policy.hpp"
#include "rcoal/sim/gpu_machine.hpp"
#include "rcoal/spans/collector.hpp"
#include "rcoal/telemetry/prometheus.hpp"
#include "rcoal/telemetry/registry.hpp"
#include "rcoal/telemetry/sampler.hpp"
#include "rcoal/trace/dram_checker.hpp"
#include "rcoal/workloads/aes_kernel.hpp"

namespace rcoal::sim {
namespace {

const std::array<std::uint8_t, 16> kKey = {
    0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
    0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

constexpr unsigned kLines = 8;
constexpr unsigned kWarmup = 2;
constexpr std::uint64_t kPlaintextSeed = 7;

GpuConfig
baseConfig()
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 42;
    cfg.numSms = 4;
    return cfg;
}

GpuConfig
hierarchyConfig(DramBackendKind backend)
{
    GpuConfig cfg = baseConfig();
    cfg.l1Enabled = true;
    cfg.l2Enabled = true;
    cfg.mshrEnabled = true;
    cfg.dramBackend = backend;
    return cfg;
}

/**
 * A test-local warm-up prefix: @p warmup AES launches on streams
 * 1..warmup with plaintexts from Rng::stream(@p plaintext_root, w).
 * Pure function of its arguments, so running it on a fresh machine is
 * the replay twin of restoring a snapshot taken after it.
 */
void
runTestWarmups(GpuMachine &machine, std::uint64_t plaintext_root,
               unsigned warmup)
{
    const SmRange range{0, machine.config().numSms};
    for (unsigned w = 0; w < warmup; ++w) {
        Rng rng = Rng::stream(plaintext_root, w);
        const auto plaintext = workloads::randomPlaintext(kLines, rng);
        workloads::AesGpuKernel kernel(plaintext, kKey,
                                       machine.config().warpSize);
        const auto id = machine.launchStream(kernel, range, w + 1);
        machine.runUntilDone(id);
        machine.take(id);
    }
}

/** The measured launch both fork and replay twins run (stream 1). */
sim::KernelStats
runMeasuredLaunch(GpuMachine &machine)
{
    Rng rng = Rng::stream(kPlaintextSeed, 0);
    const auto plaintext = workloads::randomPlaintext(kLines, rng);
    workloads::AesGpuKernel kernel(plaintext, kKey,
                                   machine.config().warpSize);
    const auto id = machine.launchStream(
        kernel, SmRange{0, machine.config().numSms}, 1);
    machine.runUntilDone(id);
    return machine.take(id);
}

void
expectObservationsIdentical(
    const std::vector<attack::EncryptionObservation> &a,
    const std::vector<attack::EncryptionObservation> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ciphertext, b[i].ciphertext) << "trial " << i;
        EXPECT_EQ(a[i].totalTime, b[i].totalTime) << "trial " << i;
        EXPECT_EQ(a[i].lastRoundTime, b[i].lastRoundTime)
            << "trial " << i;
        EXPECT_EQ(a[i].lastRoundAccesses, b[i].lastRoundAccesses)
            << "trial " << i;
        EXPECT_EQ(a[i].totalAccesses, b[i].totalAccesses)
            << "trial " << i;
    }
}

TEST(SnapshotFork, ResetMatchesFreshMachineByteForByte)
{
    const std::vector<GpuConfig> configs = {
        baseConfig(),
        hierarchyConfig(DramBackendKind::Gddr6),
        hierarchyConfig(DramBackendKind::Hbm2),
    };
    for (const GpuConfig &cfg : configs) {
        GpuMachine used(cfg);
        runTestWarmups(used, /*plaintext_root=*/19, /*warmup=*/3);
        used.reset();

        GpuMachine fresh(cfg);
        const MachineSnapshot after_reset = used.snapshot();
        const MachineSnapshot pristine = fresh.snapshot();
        EXPECT_TRUE(after_reset.byteEqual(pristine))
            << "reset() left residue (backend "
            << static_cast<int>(cfg.dramBackend) << ", hierarchy "
            << cfg.l1Enabled << ")";
    }
}

TEST(SnapshotFork, ResetWithCheckerMatchesFreshMachine)
{
    const GpuConfig cfg = hierarchyConfig(DramBackendKind::Hbm2);
    GpuMachine used(cfg);
    used.enableDramChecking(trace::DramProtocolChecker::Mode::Collect);
    runTestWarmups(used, /*plaintext_root=*/23, /*warmup=*/3);
    used.reset();

    GpuMachine fresh(cfg);
    fresh.enableDramChecking(trace::DramProtocolChecker::Mode::Collect);
    EXPECT_TRUE(used.snapshot().byteEqual(fresh.snapshot()));
}

TEST(SnapshotFork, RestoreRoundTripsTheArena)
{
    const GpuConfig cfg = hierarchyConfig(DramBackendKind::Gddr6);
    const MachineSnapshot warmed = attack::EncryptionService::
        warmedSnapshot(cfg, kKey, kLines, kPlaintextSeed, kWarmup);
    ASSERT_NE(warmed.arena, nullptr);

    const auto forked = GpuMachine::fork(warmed);
    EXPECT_TRUE(forked->quiescent());
    EXPECT_EQ(forked->launchCount(), kWarmup);
    EXPECT_TRUE(forked->snapshot().byteEqual(warmed));
}

TEST(SnapshotFork, ForkMatchesReplayStateAndStats)
{
    for (const bool skip : {true, false}) {
        GpuConfig cfg = hierarchyConfig(DramBackendKind::Gddr6);
        cfg.cycleSkipping = skip;

        GpuMachine warm(cfg);
        runTestWarmups(warm, /*plaintext_root=*/29, kWarmup);
        const MachineSnapshot snap = warm.snapshot();

        auto forked = GpuMachine::fork(snap);
        GpuMachine replayed(cfg);
        runTestWarmups(replayed, /*plaintext_root=*/29, kWarmup);

        const KernelStats fork_stats = runMeasuredLaunch(*forked);
        const KernelStats replay_stats = runMeasuredLaunch(replayed);

        EXPECT_EQ(fork_stats.cycles, replay_stats.cycles);
        EXPECT_EQ(fork_stats.warpInstructions,
                  replay_stats.warpInstructions);
        EXPECT_EQ(fork_stats.coalescedAccesses,
                  replay_stats.coalescedAccesses);
        EXPECT_EQ(fork_stats.loadAccesses, replay_stats.loadAccesses);
        EXPECT_EQ(fork_stats.storeAccesses, replay_stats.storeAccesses);
        EXPECT_EQ(fork_stats.lastRoundAccesses(),
                  replay_stats.lastRoundAccesses());
        EXPECT_EQ(fork_stats.lastRoundCycles(),
                  replay_stats.lastRoundCycles());

        // Stronger than stats equality: the machines end in the same
        // state, byte for byte — nothing downstream can diverge.
        EXPECT_TRUE(
            forked->snapshot().byteEqual(replayed.snapshot()))
            << "post-launch machine state diverged (skip " << skip
            << ")";
    }
}

TEST(SnapshotFork, ForkMatchesReplayAcrossHierarchyBackendSkipThreads)
{
    std::vector<GpuConfig> cells;
    cells.push_back(baseConfig()); // Flat hierarchy, GDDR5.
    cells.push_back(hierarchyConfig(DramBackendKind::Gddr6));
    cells.push_back(hierarchyConfig(DramBackendKind::Hbm2));
    // One randomized-coalescing cell so the per-launch RNG derivation
    // is exercised, not just the deterministic baseline.
    GpuConfig rss = hierarchyConfig(DramBackendKind::Gddr6);
    rss.policy = core::CoalescingPolicy::rss(8);
    cells.push_back(rss);

    ThreadPool pool(8);
    constexpr unsigned kSamples = 4;
    for (GpuConfig cfg : cells) {
        for (const bool skip : {true, false}) {
            cfg.cycleSkipping = skip;
            const auto fork_serial =
                attack::EncryptionService::collectSamplesShared(
                    cfg, kKey, kSamples, kLines, kPlaintextSeed,
                    kWarmup, attack::CollectMode::Fork, nullptr);
            const auto replay_serial =
                attack::EncryptionService::collectSamplesShared(
                    cfg, kKey, kSamples, kLines, kPlaintextSeed,
                    kWarmup, attack::CollectMode::Replay, nullptr);
            const auto fork_pooled =
                attack::EncryptionService::collectSamplesShared(
                    cfg, kKey, kSamples, kLines, kPlaintextSeed,
                    kWarmup, attack::CollectMode::Fork, &pool);
            const auto replay_pooled =
                attack::EncryptionService::collectSamplesShared(
                    cfg, kKey, kSamples, kLines, kPlaintextSeed,
                    kWarmup, attack::CollectMode::Replay, &pool);
            expectObservationsIdentical(fork_serial, replay_serial);
            expectObservationsIdentical(fork_serial, fork_pooled);
            expectObservationsIdentical(fork_serial, replay_pooled);
        }
    }
}

TEST(SnapshotFork, SoaSaturatedForkMatchesReplay)
{
    // Saturation-regime twin of ForkMatchesReplayStateAndStats: the
    // minimum-size PRT plus two-deep interconnect/DRAM queues keep the
    // SoA fast paths (pendingPrt stall, ldst backpressure) and the
    // ring-buffer queue hops hot through the warm-up prefix, so the
    // snapshot is taken from a machine that just drained a fully
    // backed-up pipeline. Byte identity must still hold.
    for (const bool skip : {true, false}) {
        GpuConfig cfg = baseConfig();
        cfg.prtEntries = cfg.warpSize;
        cfg.icnQueueDepth = 2;
        cfg.dramQueueDepth = 2;
        cfg.policy = core::CoalescingPolicy::rss(4, true);
        cfg.cycleSkipping = skip;

        GpuMachine warm(cfg);
        runTestWarmups(warm, /*plaintext_root=*/41, kWarmup);
        const MachineSnapshot snap = warm.snapshot();

        auto forked = GpuMachine::fork(snap);
        GpuMachine replayed(cfg);
        runTestWarmups(replayed, /*plaintext_root=*/41, kWarmup);
        EXPECT_TRUE(replayed.snapshot().byteEqual(snap))
            << "warm-up prefix diverged (skip " << skip << ")";

        const KernelStats fork_stats = runMeasuredLaunch(*forked);
        const KernelStats replay_stats = runMeasuredLaunch(replayed);
        EXPECT_EQ(fork_stats.cycles, replay_stats.cycles);
        EXPECT_GT(fork_stats.prtStallCycles, 0u)
            << "fixture not saturating";
        EXPECT_EQ(fork_stats.prtStallCycles,
                  replay_stats.prtStallCycles);
        EXPECT_EQ(fork_stats.icnStallCycles,
                  replay_stats.icnStallCycles);
        EXPECT_TRUE(forked->snapshot().byteEqual(replayed.snapshot()))
            << "post-launch machine state diverged (skip " << skip
            << ")";
    }
}

TEST(SnapshotFork, ZeroWarmupForkFallsBackToParallelCollection)
{
    const GpuConfig cfg = baseConfig();
    const auto shared =
        attack::EncryptionService::collectSamplesShared(
            cfg, kKey, 4, kLines, kPlaintextSeed, /*warmup=*/0,
            attack::CollectMode::Fork, nullptr);
    const auto parallel =
        attack::EncryptionService::collectSamplesParallel(
            cfg, kKey, 4, kLines, kPlaintextSeed, nullptr);
    expectObservationsIdentical(shared, parallel);
}

TEST(SnapshotFork, ForkTelemetryMatchesReplay)
{
    const GpuConfig cfg = hierarchyConfig(DramBackendKind::Gddr6);

    GpuMachine warm(cfg);
    runTestWarmups(warm, /*plaintext_root=*/31, kWarmup);
    const MachineSnapshot snap = warm.snapshot();

    // Attach telemetry only after the shared prefix — the contract the
    // collect and serve paths follow — then run the same measured
    // launch on both twins with a short interval so several samples
    // land inside it.
    constexpr Cycle kInterval = 256;
    const auto run_with_telemetry = [&](GpuMachine &machine) {
        telemetry::MetricRegistry registry;
        telemetry::TelemetrySampler sampler(registry, kInterval);
        machine.setTelemetry(&sampler);
        (void)runMeasuredLaunch(machine);
        machine.setTelemetry(nullptr);
        sampler.detachSources();
        return std::pair<std::string, std::string>(
            telemetry::renderPrometheus(registry),
            sampler.seriesJson());
    };

    auto forked = GpuMachine::fork(snap);
    GpuMachine replayed(cfg);
    runTestWarmups(replayed, /*plaintext_root=*/31, kWarmup);

    const auto fork_out = run_with_telemetry(*forked);
    const auto replay_out = run_with_telemetry(replayed);
    EXPECT_GT(fork_out.second.size(), 2u); // Non-trivial series JSON.
    EXPECT_EQ(fork_out.first, replay_out.first);
    EXPECT_EQ(fork_out.second, replay_out.second);
}

TEST(SnapshotFork, SpanStateRoundTripsThroughSnapshotRestore)
{
    const GpuConfig cfg = baseConfig();
    GpuMachine machine(cfg);
    spans::SpanCollector collector;
    machine.setSpanCollector(&collector);

    // In-flight span state at snapshot time: one finished span and one
    // still live (opened, stamped, not yet finished). Launch maps are
    // empty — the machine is quiescent — but live-span totals and the
    // slab must survive the round-trip.
    const std::uint32_t done = collector.openRequest();
    collector.stampRequest(done, spans::SpanStage::Queue, 0, 11);
    collector.finishRequest(done);
    const std::uint32_t live = collector.openRequest();
    collector.stampRequest(live, spans::SpanStage::Queue, 11, 40);
    runTestWarmups(machine, /*plaintext_root=*/43, kWarmup);
    const MachineSnapshot snap = machine.snapshot();

    GpuMachine twin(cfg);
    spans::SpanCollector twin_collector;
    twin.setSpanCollector(&twin_collector);
    twin.restore(snap);
    EXPECT_EQ(twin_collector.spansOpened(), 2u);
    EXPECT_EQ(twin_collector.spansFinished(), 1u);
    EXPECT_EQ(twin_collector.liveSpans(), 1u);
    EXPECT_TRUE(twin.snapshot().byteEqual(snap))
        << "span region did not re-serialize byte-identically";

    // The restored collector carries the in-flight totals and
    // continues the id sequence where the original left off.
    const spans::StageTotals totals = twin_collector.finishRequest(live);
    EXPECT_EQ(totals.cycles[static_cast<std::size_t>(
                  spans::SpanStage::Queue)],
              29u);
    EXPECT_EQ(twin_collector.openRequest(), 3u);
}

TEST(SnapshotFork, ResetClearsAttachedSpanCollector)
{
    const GpuConfig cfg = baseConfig();
    GpuMachine machine(cfg);
    spans::SpanCollector collector;
    machine.setSpanCollector(&collector);
    const std::uint32_t id = collector.openRequest();
    collector.stampRequest(id, spans::SpanStage::Queue, 0, 5);
    runTestWarmups(machine, /*plaintext_root=*/47, kWarmup);
    machine.reset();

    EXPECT_EQ(collector.spansOpened(), 0u);
    EXPECT_EQ(collector.liveSpans(), 0u);
    EXPECT_EQ(collector.slab().totalAppended(), 0u);

    // Reset machine + cleared collector snapshot exactly like a fresh
    // pair — the same audit the sink/checker reset paths pass.
    GpuMachine fresh(cfg);
    spans::SpanCollector fresh_collector;
    fresh.setSpanCollector(&fresh_collector);
    EXPECT_TRUE(machine.snapshot().byteEqual(fresh.snapshot()));
}

TEST(SnapshotFork, ForkCheckerVerdictsMatchReplay)
{
    const GpuConfig cfg = hierarchyConfig(DramBackendKind::Hbm2);

    GpuMachine warm(cfg);
    warm.enableDramChecking(trace::DramProtocolChecker::Mode::Collect);
    runTestWarmups(warm, /*plaintext_root=*/37, kWarmup);
    const MachineSnapshot snap = warm.snapshot();

    // fork() restores the checker configuration from the arena; the
    // replay twin enables it by hand before re-simulating the prefix.
    auto forked = GpuMachine::fork(snap);
    GpuMachine replayed(cfg);
    replayed.enableDramChecking(
        trace::DramProtocolChecker::Mode::Collect);
    runTestWarmups(replayed, /*plaintext_root=*/37, kWarmup);

    (void)runMeasuredLaunch(*forked);
    (void)runMeasuredLaunch(replayed);

    const auto &fork_checkers = forked->dramCheckers();
    const auto &replay_checkers = replayed.dramCheckers();
    ASSERT_EQ(fork_checkers.size(), replay_checkers.size());
    ASSERT_FALSE(fork_checkers.empty());
    std::uint64_t commands = 0;
    for (std::size_t p = 0; p < fork_checkers.size(); ++p) {
        const auto &fc = *fork_checkers[p];
        const auto &rc = *replay_checkers[p];
        EXPECT_EQ(fc.commandsChecked(), rc.commandsChecked())
            << "partition " << p;
        commands += fc.commandsChecked();
        ASSERT_EQ(fc.violations().size(), rc.violations().size())
            << "partition " << p;
        for (std::size_t v = 0; v < fc.violations().size(); ++v) {
            EXPECT_EQ(fc.violations()[v].rule,
                      rc.violations()[v].rule);
            EXPECT_EQ(fc.violations()[v].detail,
                      rc.violations()[v].detail);
            EXPECT_EQ(fc.violations()[v].cycle,
                      rc.violations()[v].cycle);
        }
        EXPECT_TRUE(fc.violations().empty())
            << fc.violations().front().rule << ": "
            << fc.violations().front().detail;
    }
    EXPECT_GT(commands, 0u);
}

} // namespace
} // namespace rcoal::sim
