/**
 * @file
 * Tests for the energy model.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/energy.hpp"
#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/aes_kernel.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::sim {
namespace {

TEST(Energy, ZeroStatsZeroDynamicEnergy)
{
    const KernelStats stats;
    const auto energy = estimateEnergy(stats, GpuConfig::paperBaseline());
    EXPECT_EQ(energy.dramDynamic, 0.0);
    EXPECT_EQ(energy.core, 0.0);
    EXPECT_EQ(energy.total(), 0.0);
}

TEST(Energy, HandComputedBreakdown)
{
    KernelStats stats;
    stats.dramRowHits = 10;
    stats.dramRowMisses = 5;
    stats.dramActivates = 5;
    stats.warpInstructions = 100;
    stats.cycles = 1000;
    GpuConfig cfg = GpuConfig::paperBaseline(); // 64 B blocks, 15 SMs
    EnergyCoefficients c;
    c.dramPerByte = 1.0;
    c.dramActivate = 100.0;
    c.interconnectPerFlit = 2.0;
    c.smPerInstruction = 3.0;
    c.staticPerCycleSm = 1.0;
    const auto energy = estimateEnergy(stats, cfg, c);
    EXPECT_DOUBLE_EQ(energy.dramDynamic, 15.0 * 64.0);
    EXPECT_DOUBLE_EQ(energy.dramActivate, 500.0);
    EXPECT_DOUBLE_EQ(energy.interconnect, 15.0 * 2.0 * 2.0);
    EXPECT_DOUBLE_EQ(energy.core, 300.0);
    EXPECT_DOUBLE_EQ(energy.leakage, 1000.0 * 15.0);
    EXPECT_DOUBLE_EQ(energy.total(),
                     960.0 + 500.0 + 60.0 + 300.0 + 15000.0);
}

TEST(Energy, MoreSubwarpsCostMoreEnergy)
{
    // The §III motivation: data movement is energy; FSS inflates both.
    Rng rng(5);
    const std::array<std::uint8_t, 16> key{7};
    const auto plaintext = workloads::randomPlaintext(32, rng);
    const workloads::AesGpuKernel kernel(plaintext, key, 32);

    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 2;
    const auto base_stats = Gpu(cfg).launch(kernel);
    cfg.policy = core::CoalescingPolicy::fss(16);
    const auto fss_stats = Gpu(cfg).launch(kernel);

    const auto base = estimateEnergy(base_stats, cfg);
    const auto fss = estimateEnergy(fss_stats, cfg);
    EXPECT_GT(fss.dramDynamic, 1.5 * base.dramDynamic);
    EXPECT_GT(fss.total(), base.total());
}

TEST(Energy, CachesCutDramEnergy)
{
    Rng rng(6);
    const auto kernel = workloads::makeRandomKernel(2, 40, 32, 64, rng);
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 2;
    const auto no_cache = estimateEnergy(Gpu(cfg).launch(*kernel), cfg);
    cfg.l1Enabled = true;
    const auto with_cache =
        estimateEnergy(Gpu(cfg).launch(*kernel), cfg);
    EXPECT_LT(with_cache.dramDynamic, no_cache.dramDynamic);
    EXPECT_GT(with_cache.caches, 0.0);
}

TEST(Energy, DescribeListsComponents)
{
    KernelStats stats;
    stats.dramRowHits = 1;
    stats.cycles = 10;
    const auto energy =
        estimateEnergy(stats, GpuConfig::paperBaseline());
    const std::string text = energy.describe();
    for (const char *needle :
         {"total energy", "DRAM dynamic", "interconnect", "leakage"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

} // namespace
} // namespace rcoal::sim
