/**
 * @file
 * Tests of the core/memory clock-domain interaction: the DRAM ticks at
 * 924 MHz while the cores tick at 1400 MHz, so memory-bound kernels
 * must slow down proportionally when the memory clock drops.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/gpu.hpp"
#include "rcoal/workloads/micro_kernels.hpp"

namespace rcoal::sim {
namespace {

Cycle
cyclesWithMemClock(double mem_mhz)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 3;
    cfg.memClockMhz = mem_mhz;
    Gpu gpu(cfg);
    // Strided loads: one access per lane, heavily DRAM-bound.
    const auto kernel = workloads::makeStridedKernel(4, 32, 32, 64);
    return gpu.launch(*kernel).cycles;
}

TEST(ClockDomains, SlowerMemoryClockSlowsMemoryBoundKernels)
{
    const Cycle fast = cyclesWithMemClock(924.0);
    const Cycle half = cyclesWithMemClock(462.0);
    // Halving the DRAM clock should cost a clearly measurable slowdown
    // (not necessarily 2x: injection and interconnect stay at core
    // clock).
    EXPECT_GT(half, fast + fast / 4);
}

TEST(ClockDomains, FasterMemoryClockHelps)
{
    const Cycle normal = cyclesWithMemClock(924.0);
    const Cycle fast = cyclesWithMemClock(1848.0);
    EXPECT_LT(fast, normal);
}

TEST(ClockDomains, ComputeBoundKernelInsensitiveToMemClock)
{
    GpuConfig cfg = GpuConfig::paperBaseline();
    cfg.seed = 3;
    std::vector<std::vector<WarpInstruction>> traces(1);
    for (int i = 0; i < 50; ++i)
        traces[0].push_back(WarpInstruction::alu(10));
    const VectorKernel kernel(std::move(traces));

    cfg.memClockMhz = 924.0;
    const Cycle normal = Gpu(cfg).launch(kernel).cycles;
    cfg.memClockMhz = 231.0;
    const Cycle slow_mem = Gpu(cfg).launch(kernel).cycles;
    EXPECT_EQ(normal, slow_mem);
}

TEST(ClockDomains, MemClockEqualToCoreClockIsSupported)
{
    const Cycle cycles = cyclesWithMemClock(1400.0);
    EXPECT_GT(cycles, 0u);
    EXPECT_LT(cycles, cyclesWithMemClock(700.0));
}

} // namespace
} // namespace rcoal::sim
