/**
 * @file
 * Unit tests for the kernel/trace abstractions.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/kernel.hpp"

namespace rcoal::sim {
namespace {

TEST(WarpInstruction, AluBuilder)
{
    const auto instr = WarpInstruction::alu(5);
    EXPECT_EQ(instr.op, WarpInstruction::Op::Alu);
    EXPECT_EQ(instr.latency, 5u);
    EXPECT_FALSE(instr.waitAllLoads);
    EXPECT_TRUE(instr.lanes.empty());

    const auto join = WarpInstruction::alu(3, true);
    EXPECT_TRUE(join.waitAllLoads);
}

TEST(WarpInstruction, LoadBuilder)
{
    std::vector<core::LaneRequest> lanes{{0, 0x40, 4, true}};
    const auto instr =
        WarpInstruction::load(lanes, AccessTag::LastRoundLookup);
    EXPECT_EQ(instr.op, WarpInstruction::Op::Load);
    EXPECT_EQ(instr.tag, AccessTag::LastRoundLookup);
    ASSERT_EQ(instr.lanes.size(), 1u);
    EXPECT_EQ(instr.lanes[0].addr, 0x40u);
}

TEST(WarpInstruction, StoreBuilder)
{
    std::vector<core::LaneRequest> lanes{{0, 0x80, 16, true}};
    const auto instr =
        WarpInstruction::store(lanes, AccessTag::CiphertextStore);
    EXPECT_EQ(instr.op, WarpInstruction::Op::Store);
    EXPECT_EQ(instr.tag, AccessTag::CiphertextStore);
}

TEST(VectorKernel, ExposesTraces)
{
    std::vector<std::vector<WarpInstruction>> traces(2);
    traces[0].push_back(WarpInstruction::alu(1));
    traces[1].push_back(WarpInstruction::alu(2));
    traces[1].push_back(WarpInstruction::alu(3));
    const VectorKernel kernel(std::move(traces), "demo");
    EXPECT_EQ(kernel.numWarps(), 2u);
    EXPECT_EQ(kernel.trace(0).size(), 1u);
    EXPECT_EQ(kernel.trace(1).size(), 2u);
    EXPECT_EQ(kernel.name(), "demo");
}

TEST(VectorKernelDeathTest, OutOfRangeWarpPanics)
{
    std::vector<std::vector<WarpInstruction>> traces(1);
    const VectorKernel kernel(std::move(traces));
    EXPECT_DEATH(kernel.trace(3), "out of range");
}

TEST(AccessTag, NamesAreDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumAccessTags; ++i)
        names.insert(accessTagName(static_cast<AccessTag>(i)));
    EXPECT_EQ(names.size(), kNumAccessTags);
}

} // namespace
} // namespace rcoal::sim
