/**
 * @file
 * Unit tests for the cache and MSHR table.
 */

#include <gtest/gtest.h>

#include "rcoal/sim/cache.hpp"

namespace rcoal::sim {
namespace {

CacheGeometry
tinyCache()
{
    // 4 sets x 2 ways x 64-byte lines = 512 bytes.
    return {512, 64, 2, 4};
}

TEST(Cache, MissThenHit)
{
    Cache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000));
    cache.fill(0x1000);
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache cache(tinyCache());
    cache.fill(0x1000);
    EXPECT_TRUE(cache.access(0x1004));
    EXPECT_TRUE(cache.access(0x103f));
    EXPECT_FALSE(cache.access(0x1040));
}

TEST(Cache, LruEvictionOrder)
{
    Cache cache(tinyCache());
    // Lines 0x0000, 0x0400, 0x0800 all map to set 0 (stride =
    // 4 sets * 64 B = 256... use stride 256 to stay in one set).
    cache.fill(0x0000);
    cache.fill(0x0100);
    // Touch 0x0000 so 0x0100 is LRU.
    EXPECT_TRUE(cache.access(0x0000));
    cache.fill(0x0200); // evicts 0x0100
    EXPECT_TRUE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0100));
    EXPECT_TRUE(cache.contains(0x0200));
}

TEST(Cache, FillIsIdempotent)
{
    Cache cache(tinyCache());
    cache.fill(0x40);
    cache.fill(0x40);
    cache.fill(0x80);
    EXPECT_TRUE(cache.contains(0x40));
    EXPECT_TRUE(cache.contains(0x80));
}

TEST(Cache, DifferentSetsDoNotInterfere)
{
    Cache cache(tinyCache());
    cache.fill(0x000); // set 0
    cache.fill(0x040); // set 1
    cache.fill(0x080); // set 2
    cache.fill(0x0c0); // set 3
    EXPECT_TRUE(cache.contains(0x000));
    EXPECT_TRUE(cache.contains(0x040));
    EXPECT_TRUE(cache.contains(0x080));
    EXPECT_TRUE(cache.contains(0x0c0));
}

TEST(Cache, ClearInvalidatesEverything)
{
    Cache cache(tinyCache());
    cache.fill(0x40);
    cache.clear();
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(Cache, ContainsDoesNotUpdateLru)
{
    Cache cache(tinyCache());
    cache.fill(0x0000);
    cache.fill(0x0100);
    // contains() must not refresh 0x0000.
    EXPECT_TRUE(cache.contains(0x0000));
    cache.fill(0x0200); // evicts LRU = 0x0000
    EXPECT_FALSE(cache.contains(0x0000));
}

TEST(Cache, HitLatencyExposed)
{
    Cache cache(tinyCache());
    EXPECT_EQ(cache.hitLatency(), 4u);
}

TEST(Mshr, AllocateMergeComplete)
{
    MshrTable mshr(4);
    EXPECT_FALSE(mshr.isPending(0x40));
    MemoryAccess primary;
    primary.id = 1;
    mshr.allocate(0x40, primary);
    EXPECT_TRUE(mshr.isPending(0x40));

    MemoryAccess secondary;
    secondary.id = 2;
    EXPECT_EQ(mshr.merge(0x40, secondary), 2u);
    EXPECT_EQ(mshr.merges(), 1u);

    const auto waiting = mshr.complete(0x40);
    ASSERT_EQ(waiting.size(), 2u);
    EXPECT_EQ(waiting[0].id, 1u);
    EXPECT_EQ(waiting[1].id, 2u);
    EXPECT_FALSE(mshr.isPending(0x40));
}

TEST(Mshr, CapacityLimit)
{
    MshrTable mshr(2);
    mshr.allocate(0x40, {});
    mshr.allocate(0x80, {});
    EXPECT_FALSE(mshr.canAllocate());
    mshr.complete(0x40);
    EXPECT_TRUE(mshr.canAllocate());
}

TEST(Mshr, IndependentBlocks)
{
    MshrTable mshr(4);
    mshr.allocate(0x40, {});
    mshr.allocate(0x80, {});
    EXPECT_TRUE(mshr.isPending(0x40));
    EXPECT_TRUE(mshr.isPending(0x80));
    mshr.complete(0x40);
    EXPECT_FALSE(mshr.isPending(0x40));
    EXPECT_TRUE(mshr.isPending(0x80));
}

TEST(MshrDeathTest, DoubleAllocatePanics)
{
    MshrTable mshr(4);
    mshr.allocate(0x40, {});
    EXPECT_DEATH(mshr.allocate(0x40, {}), "double-allocate");
}

TEST(MshrDeathTest, MergeWithoutPendingPanics)
{
    MshrTable mshr(4);
    EXPECT_DEATH(mshr.merge(0x40, {}), "without pending");
}

TEST(MshrDeathTest, CompleteWithoutPendingPanics)
{
    MshrTable mshr(4);
    EXPECT_DEATH(mshr.complete(0x40), "without pending");
}

} // namespace
} // namespace rcoal::sim
