file(REMOVE_RECURSE
  "../examples/defense_explorer"
  "../examples/defense_explorer.pdb"
  "CMakeFiles/defense_explorer.dir/defense_explorer.cpp.o"
  "CMakeFiles/defense_explorer.dir/defense_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
