# Empty dependencies file for defense_explorer.
# This may be replaced when dependencies are built.
