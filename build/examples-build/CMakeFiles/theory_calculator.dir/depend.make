# Empty dependencies file for theory_calculator.
# This may be replaced when dependencies are built.
