file(REMOVE_RECURSE
  "../examples/theory_calculator"
  "../examples/theory_calculator.pdb"
  "CMakeFiles/theory_calculator.dir/theory_calculator.cpp.o"
  "CMakeFiles/theory_calculator.dir/theory_calculator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
