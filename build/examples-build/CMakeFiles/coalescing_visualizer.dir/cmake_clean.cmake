file(REMOVE_RECURSE
  "../examples/coalescing_visualizer"
  "../examples/coalescing_visualizer.pdb"
  "CMakeFiles/coalescing_visualizer.dir/coalescing_visualizer.cpp.o"
  "CMakeFiles/coalescing_visualizer.dir/coalescing_visualizer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalescing_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
