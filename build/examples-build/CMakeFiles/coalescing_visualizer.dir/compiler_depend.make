# Empty compiler generated dependencies file for coalescing_visualizer.
# This may be replaced when dependencies are built.
