# Empty dependencies file for sweep_to_csv.
# This may be replaced when dependencies are built.
