
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sweep_to_csv.cpp" "examples-build/CMakeFiles/sweep_to_csv.dir/sweep_to_csv.cpp.o" "gcc" "examples-build/CMakeFiles/sweep_to_csv.dir/sweep_to_csv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/rcoal_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rcoal_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/rcoal_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcoal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rcoal/CMakeFiles/rcoal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/rcoal_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rcoal_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
