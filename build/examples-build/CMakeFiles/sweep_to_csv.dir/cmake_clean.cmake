file(REMOVE_RECURSE
  "../examples/sweep_to_csv"
  "../examples/sweep_to_csv.pdb"
  "CMakeFiles/sweep_to_csv.dir/sweep_to_csv.cpp.o"
  "CMakeFiles/sweep_to_csv.dir/sweep_to_csv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_to_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
