file(REMOVE_RECURSE
  "librcoal_core.a"
)
