file(REMOVE_RECURSE
  "CMakeFiles/rcoal_core.dir/coalescer.cpp.o"
  "CMakeFiles/rcoal_core.dir/coalescer.cpp.o.d"
  "CMakeFiles/rcoal_core.dir/partitioner.cpp.o"
  "CMakeFiles/rcoal_core.dir/partitioner.cpp.o.d"
  "CMakeFiles/rcoal_core.dir/pending_request_table.cpp.o"
  "CMakeFiles/rcoal_core.dir/pending_request_table.cpp.o.d"
  "CMakeFiles/rcoal_core.dir/policy.cpp.o"
  "CMakeFiles/rcoal_core.dir/policy.cpp.o.d"
  "CMakeFiles/rcoal_core.dir/rcoal_score.cpp.o"
  "CMakeFiles/rcoal_core.dir/rcoal_score.cpp.o.d"
  "CMakeFiles/rcoal_core.dir/subwarp.cpp.o"
  "CMakeFiles/rcoal_core.dir/subwarp.cpp.o.d"
  "librcoal_core.a"
  "librcoal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
