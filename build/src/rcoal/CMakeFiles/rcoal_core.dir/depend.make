# Empty dependencies file for rcoal_core.
# This may be replaced when dependencies are built.
