
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rcoal/coalescer.cpp" "src/rcoal/CMakeFiles/rcoal_core.dir/coalescer.cpp.o" "gcc" "src/rcoal/CMakeFiles/rcoal_core.dir/coalescer.cpp.o.d"
  "/root/repo/src/rcoal/partitioner.cpp" "src/rcoal/CMakeFiles/rcoal_core.dir/partitioner.cpp.o" "gcc" "src/rcoal/CMakeFiles/rcoal_core.dir/partitioner.cpp.o.d"
  "/root/repo/src/rcoal/pending_request_table.cpp" "src/rcoal/CMakeFiles/rcoal_core.dir/pending_request_table.cpp.o" "gcc" "src/rcoal/CMakeFiles/rcoal_core.dir/pending_request_table.cpp.o.d"
  "/root/repo/src/rcoal/policy.cpp" "src/rcoal/CMakeFiles/rcoal_core.dir/policy.cpp.o" "gcc" "src/rcoal/CMakeFiles/rcoal_core.dir/policy.cpp.o.d"
  "/root/repo/src/rcoal/rcoal_score.cpp" "src/rcoal/CMakeFiles/rcoal_core.dir/rcoal_score.cpp.o" "gcc" "src/rcoal/CMakeFiles/rcoal_core.dir/rcoal_score.cpp.o.d"
  "/root/repo/src/rcoal/subwarp.cpp" "src/rcoal/CMakeFiles/rcoal_core.dir/subwarp.cpp.o" "gcc" "src/rcoal/CMakeFiles/rcoal_core.dir/subwarp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
