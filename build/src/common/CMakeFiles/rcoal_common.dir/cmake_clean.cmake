file(REMOVE_RECURSE
  "CMakeFiles/rcoal_common.dir/csv.cpp.o"
  "CMakeFiles/rcoal_common.dir/csv.cpp.o.d"
  "CMakeFiles/rcoal_common.dir/histogram.cpp.o"
  "CMakeFiles/rcoal_common.dir/histogram.cpp.o.d"
  "CMakeFiles/rcoal_common.dir/logging.cpp.o"
  "CMakeFiles/rcoal_common.dir/logging.cpp.o.d"
  "CMakeFiles/rcoal_common.dir/rng.cpp.o"
  "CMakeFiles/rcoal_common.dir/rng.cpp.o.d"
  "CMakeFiles/rcoal_common.dir/stats.cpp.o"
  "CMakeFiles/rcoal_common.dir/stats.cpp.o.d"
  "CMakeFiles/rcoal_common.dir/table_printer.cpp.o"
  "CMakeFiles/rcoal_common.dir/table_printer.cpp.o.d"
  "librcoal_common.a"
  "librcoal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
