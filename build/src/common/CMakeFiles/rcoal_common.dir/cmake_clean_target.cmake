file(REMOVE_RECURSE
  "librcoal_common.a"
)
