# Empty compiler generated dependencies file for rcoal_common.
# This may be replaced when dependencies are built.
