file(REMOVE_RECURSE
  "librcoal_workloads.a"
)
