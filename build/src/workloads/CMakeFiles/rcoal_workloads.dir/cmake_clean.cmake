file(REMOVE_RECURSE
  "CMakeFiles/rcoal_workloads.dir/aes_kernel.cpp.o"
  "CMakeFiles/rcoal_workloads.dir/aes_kernel.cpp.o.d"
  "CMakeFiles/rcoal_workloads.dir/micro_kernels.cpp.o"
  "CMakeFiles/rcoal_workloads.dir/micro_kernels.cpp.o.d"
  "librcoal_workloads.a"
  "librcoal_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
