# Empty compiler generated dependencies file for rcoal_workloads.
# This may be replaced when dependencies are built.
