file(REMOVE_RECURSE
  "librcoal_theory.a"
)
