# Empty dependencies file for rcoal_theory.
# This may be replaced when dependencies are built.
