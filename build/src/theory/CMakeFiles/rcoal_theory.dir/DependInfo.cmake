
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/coalesced_distribution.cpp" "src/theory/CMakeFiles/rcoal_theory.dir/coalesced_distribution.cpp.o" "gcc" "src/theory/CMakeFiles/rcoal_theory.dir/coalesced_distribution.cpp.o.d"
  "/root/repo/src/theory/security_model.cpp" "src/theory/CMakeFiles/rcoal_theory.dir/security_model.cpp.o" "gcc" "src/theory/CMakeFiles/rcoal_theory.dir/security_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rcoal_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
