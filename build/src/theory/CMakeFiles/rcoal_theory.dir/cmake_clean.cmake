file(REMOVE_RECURSE
  "CMakeFiles/rcoal_theory.dir/coalesced_distribution.cpp.o"
  "CMakeFiles/rcoal_theory.dir/coalesced_distribution.cpp.o.d"
  "CMakeFiles/rcoal_theory.dir/security_model.cpp.o"
  "CMakeFiles/rcoal_theory.dir/security_model.cpp.o.d"
  "librcoal_theory.a"
  "librcoal_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
