file(REMOVE_RECURSE
  "CMakeFiles/rcoal_aes.dir/aes.cpp.o"
  "CMakeFiles/rcoal_aes.dir/aes.cpp.o.d"
  "CMakeFiles/rcoal_aes.dir/galois.cpp.o"
  "CMakeFiles/rcoal_aes.dir/galois.cpp.o.d"
  "CMakeFiles/rcoal_aes.dir/key_schedule.cpp.o"
  "CMakeFiles/rcoal_aes.dir/key_schedule.cpp.o.d"
  "CMakeFiles/rcoal_aes.dir/sbox.cpp.o"
  "CMakeFiles/rcoal_aes.dir/sbox.cpp.o.d"
  "CMakeFiles/rcoal_aes.dir/ttable.cpp.o"
  "CMakeFiles/rcoal_aes.dir/ttable.cpp.o.d"
  "librcoal_aes.a"
  "librcoal_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
