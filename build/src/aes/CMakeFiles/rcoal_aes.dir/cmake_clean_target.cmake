file(REMOVE_RECURSE
  "librcoal_aes.a"
)
