
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aes/aes.cpp" "src/aes/CMakeFiles/rcoal_aes.dir/aes.cpp.o" "gcc" "src/aes/CMakeFiles/rcoal_aes.dir/aes.cpp.o.d"
  "/root/repo/src/aes/galois.cpp" "src/aes/CMakeFiles/rcoal_aes.dir/galois.cpp.o" "gcc" "src/aes/CMakeFiles/rcoal_aes.dir/galois.cpp.o.d"
  "/root/repo/src/aes/key_schedule.cpp" "src/aes/CMakeFiles/rcoal_aes.dir/key_schedule.cpp.o" "gcc" "src/aes/CMakeFiles/rcoal_aes.dir/key_schedule.cpp.o.d"
  "/root/repo/src/aes/sbox.cpp" "src/aes/CMakeFiles/rcoal_aes.dir/sbox.cpp.o" "gcc" "src/aes/CMakeFiles/rcoal_aes.dir/sbox.cpp.o.d"
  "/root/repo/src/aes/ttable.cpp" "src/aes/CMakeFiles/rcoal_aes.dir/ttable.cpp.o" "gcc" "src/aes/CMakeFiles/rcoal_aes.dir/ttable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
