# Empty compiler generated dependencies file for rcoal_aes.
# This may be replaced when dependencies are built.
