# Empty dependencies file for rcoal_attack.
# This may be replaced when dependencies are built.
