file(REMOVE_RECURSE
  "librcoal_attack.a"
)
