
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/correlation_attack.cpp" "src/attack/CMakeFiles/rcoal_attack.dir/correlation_attack.cpp.o" "gcc" "src/attack/CMakeFiles/rcoal_attack.dir/correlation_attack.cpp.o.d"
  "/root/repo/src/attack/encryption_service.cpp" "src/attack/CMakeFiles/rcoal_attack.dir/encryption_service.cpp.o" "gcc" "src/attack/CMakeFiles/rcoal_attack.dir/encryption_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/rcoal_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/rcoal/CMakeFiles/rcoal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcoal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rcoal_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
