file(REMOVE_RECURSE
  "CMakeFiles/rcoal_attack.dir/correlation_attack.cpp.o"
  "CMakeFiles/rcoal_attack.dir/correlation_attack.cpp.o.d"
  "CMakeFiles/rcoal_attack.dir/encryption_service.cpp.o"
  "CMakeFiles/rcoal_attack.dir/encryption_service.cpp.o.d"
  "librcoal_attack.a"
  "librcoal_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
