# Empty dependencies file for rcoal_numeric.
# This may be replaced when dependencies are built.
