
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/big_rational.cpp" "src/numeric/CMakeFiles/rcoal_numeric.dir/big_rational.cpp.o" "gcc" "src/numeric/CMakeFiles/rcoal_numeric.dir/big_rational.cpp.o.d"
  "/root/repo/src/numeric/big_uint.cpp" "src/numeric/CMakeFiles/rcoal_numeric.dir/big_uint.cpp.o" "gcc" "src/numeric/CMakeFiles/rcoal_numeric.dir/big_uint.cpp.o.d"
  "/root/repo/src/numeric/combinatorics.cpp" "src/numeric/CMakeFiles/rcoal_numeric.dir/combinatorics.cpp.o" "gcc" "src/numeric/CMakeFiles/rcoal_numeric.dir/combinatorics.cpp.o.d"
  "/root/repo/src/numeric/partitions.cpp" "src/numeric/CMakeFiles/rcoal_numeric.dir/partitions.cpp.o" "gcc" "src/numeric/CMakeFiles/rcoal_numeric.dir/partitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
