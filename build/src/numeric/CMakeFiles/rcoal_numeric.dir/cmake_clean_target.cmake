file(REMOVE_RECURSE
  "librcoal_numeric.a"
)
