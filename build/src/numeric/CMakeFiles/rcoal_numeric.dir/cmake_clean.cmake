file(REMOVE_RECURSE
  "CMakeFiles/rcoal_numeric.dir/big_rational.cpp.o"
  "CMakeFiles/rcoal_numeric.dir/big_rational.cpp.o.d"
  "CMakeFiles/rcoal_numeric.dir/big_uint.cpp.o"
  "CMakeFiles/rcoal_numeric.dir/big_uint.cpp.o.d"
  "CMakeFiles/rcoal_numeric.dir/combinatorics.cpp.o"
  "CMakeFiles/rcoal_numeric.dir/combinatorics.cpp.o.d"
  "CMakeFiles/rcoal_numeric.dir/partitions.cpp.o"
  "CMakeFiles/rcoal_numeric.dir/partitions.cpp.o.d"
  "librcoal_numeric.a"
  "librcoal_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
