
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_mapping.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/address_mapping.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/address_mapping.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/dram.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/dram.cpp.o.d"
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/interconnect.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/interconnect.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/interconnect.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/simt_stack.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/simt_stack.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/simt_stack.cpp.o.d"
  "/root/repo/src/sim/sm.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/sm.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/sm.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/rcoal_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/rcoal_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rcoal/CMakeFiles/rcoal_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
