file(REMOVE_RECURSE
  "CMakeFiles/rcoal_sim.dir/address_mapping.cpp.o"
  "CMakeFiles/rcoal_sim.dir/address_mapping.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/cache.cpp.o"
  "CMakeFiles/rcoal_sim.dir/cache.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/config.cpp.o"
  "CMakeFiles/rcoal_sim.dir/config.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/dram.cpp.o"
  "CMakeFiles/rcoal_sim.dir/dram.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/energy.cpp.o"
  "CMakeFiles/rcoal_sim.dir/energy.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/gpu.cpp.o"
  "CMakeFiles/rcoal_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/interconnect.cpp.o"
  "CMakeFiles/rcoal_sim.dir/interconnect.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/kernel.cpp.o"
  "CMakeFiles/rcoal_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/simt_stack.cpp.o"
  "CMakeFiles/rcoal_sim.dir/simt_stack.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/sm.cpp.o"
  "CMakeFiles/rcoal_sim.dir/sm.cpp.o.d"
  "CMakeFiles/rcoal_sim.dir/stats.cpp.o"
  "CMakeFiles/rcoal_sim.dir/stats.cpp.o.d"
  "librcoal_sim.a"
  "librcoal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
