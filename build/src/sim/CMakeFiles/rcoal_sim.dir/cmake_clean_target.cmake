file(REMOVE_RECURSE
  "librcoal_sim.a"
)
