# Empty dependencies file for rcoal_sim.
# This may be replaced when dependencies are built.
