# Empty dependencies file for components_benchmark.
# This may be replaced when dependencies are built.
