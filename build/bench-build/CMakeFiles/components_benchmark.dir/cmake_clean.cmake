file(REMOVE_RECURSE
  "../bench/components_benchmark"
  "../bench/components_benchmark.pdb"
  "CMakeFiles/components_benchmark.dir/components_benchmark.cpp.o"
  "CMakeFiles/components_benchmark.dir/components_benchmark.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
