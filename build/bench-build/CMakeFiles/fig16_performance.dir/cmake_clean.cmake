file(REMOVE_RECURSE
  "../bench/fig16_performance"
  "../bench/fig16_performance.pdb"
  "CMakeFiles/fig16_performance.dir/fig16_performance.cpp.o"
  "CMakeFiles/fig16_performance.dir/fig16_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
