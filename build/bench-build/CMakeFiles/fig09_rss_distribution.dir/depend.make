# Empty dependencies file for fig09_rss_distribution.
# This may be replaced when dependencies are built.
