file(REMOVE_RECURSE
  "../bench/fig09_rss_distribution"
  "../bench/fig09_rss_distribution.pdb"
  "CMakeFiles/fig09_rss_distribution.dir/fig09_rss_distribution.cpp.o"
  "CMakeFiles/fig09_rss_distribution.dir/fig09_rss_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rss_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
