# Empty dependencies file for ablation_selective_rcoal.
# This may be replaced when dependencies are built.
