file(REMOVE_RECURSE
  "../bench/ablation_selective_rcoal"
  "../bench/ablation_selective_rcoal.pdb"
  "CMakeFiles/ablation_selective_rcoal.dir/ablation_selective_rcoal.cpp.o"
  "CMakeFiles/ablation_selective_rcoal.dir/ablation_selective_rcoal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_rcoal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
