# Empty compiler generated dependencies file for rcoal_bench_support.
# This may be replaced when dependencies are built.
