file(REMOVE_RECURSE
  "librcoal_bench_support.a"
)
