file(REMOVE_RECURSE
  "CMakeFiles/rcoal_bench_support.dir/support/bench_support.cpp.o"
  "CMakeFiles/rcoal_bench_support.dir/support/bench_support.cpp.o.d"
  "librcoal_bench_support.a"
  "librcoal_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcoal_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
