# Empty dependencies file for ablation_rss_sizing.
# This may be replaced when dependencies are built.
