file(REMOVE_RECURSE
  "../bench/ablation_rss_sizing"
  "../bench/ablation_rss_sizing.pdb"
  "CMakeFiles/ablation_rss_sizing.dir/ablation_rss_sizing.cpp.o"
  "CMakeFiles/ablation_rss_sizing.dir/ablation_rss_sizing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rss_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
