file(REMOVE_RECURSE
  "../bench/ablation_memory_hierarchy"
  "../bench/ablation_memory_hierarchy.pdb"
  "CMakeFiles/ablation_memory_hierarchy.dir/ablation_memory_hierarchy.cpp.o"
  "CMakeFiles/ablation_memory_hierarchy.dir/ablation_memory_hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
