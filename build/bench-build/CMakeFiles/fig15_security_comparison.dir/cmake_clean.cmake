file(REMOVE_RECURSE
  "../bench/fig15_security_comparison"
  "../bench/fig15_security_comparison.pdb"
  "CMakeFiles/fig15_security_comparison.dir/fig15_security_comparison.cpp.o"
  "CMakeFiles/fig15_security_comparison.dir/fig15_security_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_security_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
