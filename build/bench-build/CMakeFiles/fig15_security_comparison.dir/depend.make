# Empty dependencies file for fig15_security_comparison.
# This may be replaced when dependencies are built.
