# Empty dependencies file for fig08_fss_attack.
# This may be replaced when dependencies are built.
