file(REMOVE_RECURSE
  "../bench/fig08_fss_attack"
  "../bench/fig08_fss_attack.pdb"
  "CMakeFiles/fig08_fss_attack.dir/fig08_fss_attack.cpp.o"
  "CMakeFiles/fig08_fss_attack.dir/fig08_fss_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fss_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
