# Empty compiler generated dependencies file for fig10_examples.
# This may be replaced when dependencies are built.
