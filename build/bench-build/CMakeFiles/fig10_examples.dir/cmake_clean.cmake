file(REMOVE_RECURSE
  "../bench/fig10_examples"
  "../bench/fig10_examples.pdb"
  "CMakeFiles/fig10_examples.dir/fig10_examples.cpp.o"
  "CMakeFiles/fig10_examples.dir/fig10_examples.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
