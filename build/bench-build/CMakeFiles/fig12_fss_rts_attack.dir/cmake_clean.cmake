file(REMOVE_RECURSE
  "../bench/fig12_fss_rts_attack"
  "../bench/fig12_fss_rts_attack.pdb"
  "CMakeFiles/fig12_fss_rts_attack.dir/fig12_fss_rts_attack.cpp.o"
  "CMakeFiles/fig12_fss_rts_attack.dir/fig12_fss_rts_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fss_rts_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
