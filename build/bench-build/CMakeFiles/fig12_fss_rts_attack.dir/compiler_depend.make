# Empty compiler generated dependencies file for fig12_fss_rts_attack.
# This may be replaced when dependencies are built.
