# Empty dependencies file for ablation_attacker_draws.
# This may be replaced when dependencies are built.
