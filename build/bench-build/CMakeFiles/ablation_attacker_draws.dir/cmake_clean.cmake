file(REMOVE_RECURSE
  "../bench/ablation_attacker_draws"
  "../bench/ablation_attacker_draws.pdb"
  "CMakeFiles/ablation_attacker_draws.dir/ablation_attacker_draws.cpp.o"
  "CMakeFiles/ablation_attacker_draws.dir/ablation_attacker_draws.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attacker_draws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
