# Empty compiler generated dependencies file for fig13_rss_attack.
# This may be replaced when dependencies are built.
