file(REMOVE_RECURSE
  "../bench/fig13_rss_attack"
  "../bench/fig13_rss_attack.pdb"
  "CMakeFiles/fig13_rss_attack.dir/fig13_rss_attack.cpp.o"
  "CMakeFiles/fig13_rss_attack.dir/fig13_rss_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_rss_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
