# Empty dependencies file for fig07_fss.
# This may be replaced when dependencies are built.
