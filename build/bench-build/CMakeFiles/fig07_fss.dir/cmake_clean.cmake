file(REMOVE_RECURSE
  "../bench/fig07_fss"
  "../bench/fig07_fss.pdb"
  "CMakeFiles/fig07_fss.dir/fig07_fss.cpp.o"
  "CMakeFiles/fig07_fss.dir/fig07_fss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
