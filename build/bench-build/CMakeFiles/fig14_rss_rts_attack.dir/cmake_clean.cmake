file(REMOVE_RECURSE
  "../bench/fig14_rss_rts_attack"
  "../bench/fig14_rss_rts_attack.pdb"
  "CMakeFiles/fig14_rss_rts_attack.dir/fig14_rss_rts_attack.cpp.o"
  "CMakeFiles/fig14_rss_rts_attack.dir/fig14_rss_rts_attack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_rss_rts_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
