# Empty dependencies file for fig14_rss_rts_attack.
# This may be replaced when dependencies are built.
