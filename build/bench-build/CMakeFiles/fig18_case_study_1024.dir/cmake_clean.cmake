file(REMOVE_RECURSE
  "../bench/fig18_case_study_1024"
  "../bench/fig18_case_study_1024.pdb"
  "CMakeFiles/fig18_case_study_1024.dir/fig18_case_study_1024.cpp.o"
  "CMakeFiles/fig18_case_study_1024.dir/fig18_case_study_1024.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_case_study_1024.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
