# Empty dependencies file for fig18_case_study_1024.
# This may be replaced when dependencies are built.
