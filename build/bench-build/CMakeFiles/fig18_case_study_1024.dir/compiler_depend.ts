# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig18_case_study_1024.
