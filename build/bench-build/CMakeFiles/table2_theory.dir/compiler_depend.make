# Empty compiler generated dependencies file for table2_theory.
# This may be replaced when dependencies are built.
