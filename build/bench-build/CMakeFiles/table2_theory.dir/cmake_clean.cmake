file(REMOVE_RECURSE
  "../bench/table2_theory"
  "../bench/table2_theory.pdb"
  "CMakeFiles/table2_theory.dir/table2_theory.cpp.o"
  "CMakeFiles/table2_theory.dir/table2_theory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
