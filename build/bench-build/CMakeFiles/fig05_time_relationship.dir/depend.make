# Empty dependencies file for fig05_time_relationship.
# This may be replaced when dependencies are built.
