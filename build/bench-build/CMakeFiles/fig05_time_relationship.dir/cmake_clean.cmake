file(REMOVE_RECURSE
  "../bench/fig05_time_relationship"
  "../bench/fig05_time_relationship.pdb"
  "CMakeFiles/fig05_time_relationship.dir/fig05_time_relationship.cpp.o"
  "CMakeFiles/fig05_time_relationship.dir/fig05_time_relationship.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_time_relationship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
