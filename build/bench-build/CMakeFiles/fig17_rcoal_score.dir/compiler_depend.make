# Empty compiler generated dependencies file for fig17_rcoal_score.
# This may be replaced when dependencies are built.
