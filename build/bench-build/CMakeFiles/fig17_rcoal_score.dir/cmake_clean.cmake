file(REMOVE_RECURSE
  "../bench/fig17_rcoal_score"
  "../bench/fig17_rcoal_score.pdb"
  "CMakeFiles/fig17_rcoal_score.dir/fig17_rcoal_score.cpp.o"
  "CMakeFiles/fig17_rcoal_score.dir/fig17_rcoal_score.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_rcoal_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
