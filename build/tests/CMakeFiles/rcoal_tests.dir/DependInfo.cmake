
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aes/test_aes.cpp" "tests/CMakeFiles/rcoal_tests.dir/aes/test_aes.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/aes/test_aes.cpp.o.d"
  "/root/repo/tests/aes/test_galois.cpp" "tests/CMakeFiles/rcoal_tests.dir/aes/test_galois.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/aes/test_galois.cpp.o.d"
  "/root/repo/tests/aes/test_key_schedule.cpp" "tests/CMakeFiles/rcoal_tests.dir/aes/test_key_schedule.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/aes/test_key_schedule.cpp.o.d"
  "/root/repo/tests/aes/test_sbox.cpp" "tests/CMakeFiles/rcoal_tests.dir/aes/test_sbox.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/aes/test_sbox.cpp.o.d"
  "/root/repo/tests/aes/test_ttable.cpp" "tests/CMakeFiles/rcoal_tests.dir/aes/test_ttable.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/aes/test_ttable.cpp.o.d"
  "/root/repo/tests/attack/test_correlation_attack.cpp" "tests/CMakeFiles/rcoal_tests.dir/attack/test_correlation_attack.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/attack/test_correlation_attack.cpp.o.d"
  "/root/repo/tests/attack/test_encryption_service.cpp" "tests/CMakeFiles/rcoal_tests.dir/attack/test_encryption_service.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/attack/test_encryption_service.cpp.o.d"
  "/root/repo/tests/common/test_csv.cpp" "tests/CMakeFiles/rcoal_tests.dir/common/test_csv.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/common/test_csv.cpp.o.d"
  "/root/repo/tests/common/test_histogram.cpp" "tests/CMakeFiles/rcoal_tests.dir/common/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/common/test_histogram.cpp.o.d"
  "/root/repo/tests/common/test_logging.cpp" "tests/CMakeFiles/rcoal_tests.dir/common/test_logging.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/common/test_logging.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/rcoal_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/rcoal_tests.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/common/test_stats.cpp.o.d"
  "/root/repo/tests/common/test_table_printer.cpp" "tests/CMakeFiles/rcoal_tests.dir/common/test_table_printer.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/common/test_table_printer.cpp.o.d"
  "/root/repo/tests/core/test_coalescer.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_coalescer.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_coalescer.cpp.o.d"
  "/root/repo/tests/core/test_coalescer_model.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_coalescer_model.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_coalescer_model.cpp.o.d"
  "/root/repo/tests/core/test_partitioner.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_partitioner.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_partitioner.cpp.o.d"
  "/root/repo/tests/core/test_pending_request_table.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_pending_request_table.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_pending_request_table.cpp.o.d"
  "/root/repo/tests/core/test_policy.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_policy.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_policy.cpp.o.d"
  "/root/repo/tests/core/test_rcoal_score.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_rcoal_score.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_rcoal_score.cpp.o.d"
  "/root/repo/tests/core/test_subwarp.cpp" "tests/CMakeFiles/rcoal_tests.dir/core/test_subwarp.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/core/test_subwarp.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/rcoal_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/numeric/test_big_rational.cpp" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_big_rational.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_big_rational.cpp.o.d"
  "/root/repo/tests/numeric/test_big_uint.cpp" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_big_uint.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_big_uint.cpp.o.d"
  "/root/repo/tests/numeric/test_combinatorics.cpp" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_combinatorics.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_combinatorics.cpp.o.d"
  "/root/repo/tests/numeric/test_partitions.cpp" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_partitions.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/numeric/test_partitions.cpp.o.d"
  "/root/repo/tests/sim/test_address_mapping.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_address_mapping.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_address_mapping.cpp.o.d"
  "/root/repo/tests/sim/test_cache.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_cache.cpp.o.d"
  "/root/repo/tests/sim/test_clock_domains.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_clock_domains.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_clock_domains.cpp.o.d"
  "/root/repo/tests/sim/test_config.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_config.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_config.cpp.o.d"
  "/root/repo/tests/sim/test_dram.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_dram.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_dram.cpp.o.d"
  "/root/repo/tests/sim/test_energy.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_energy.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_energy.cpp.o.d"
  "/root/repo/tests/sim/test_gpu.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_gpu.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_gpu.cpp.o.d"
  "/root/repo/tests/sim/test_interconnect.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_interconnect.cpp.o.d"
  "/root/repo/tests/sim/test_kernel.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_kernel.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_kernel.cpp.o.d"
  "/root/repo/tests/sim/test_scheduler_refresh.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_scheduler_refresh.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_scheduler_refresh.cpp.o.d"
  "/root/repo/tests/sim/test_selective_rcoal.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_selective_rcoal.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_selective_rcoal.cpp.o.d"
  "/root/repo/tests/sim/test_simt_stack.cpp" "tests/CMakeFiles/rcoal_tests.dir/sim/test_simt_stack.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/sim/test_simt_stack.cpp.o.d"
  "/root/repo/tests/theory/test_coalesced_distribution.cpp" "tests/CMakeFiles/rcoal_tests.dir/theory/test_coalesced_distribution.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/theory/test_coalesced_distribution.cpp.o.d"
  "/root/repo/tests/theory/test_model_properties.cpp" "tests/CMakeFiles/rcoal_tests.dir/theory/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/theory/test_model_properties.cpp.o.d"
  "/root/repo/tests/theory/test_security_model.cpp" "tests/CMakeFiles/rcoal_tests.dir/theory/test_security_model.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/theory/test_security_model.cpp.o.d"
  "/root/repo/tests/workloads/test_aes_kernel.cpp" "tests/CMakeFiles/rcoal_tests.dir/workloads/test_aes_kernel.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/workloads/test_aes_kernel.cpp.o.d"
  "/root/repo/tests/workloads/test_divergent_kernel.cpp" "tests/CMakeFiles/rcoal_tests.dir/workloads/test_divergent_kernel.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/workloads/test_divergent_kernel.cpp.o.d"
  "/root/repo/tests/workloads/test_micro_kernels.cpp" "tests/CMakeFiles/rcoal_tests.dir/workloads/test_micro_kernels.cpp.o" "gcc" "tests/CMakeFiles/rcoal_tests.dir/workloads/test_micro_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/rcoal_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rcoal_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/rcoal_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcoal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rcoal/CMakeFiles/rcoal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/rcoal_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/rcoal_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rcoal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
