# Empty dependencies file for rcoal_tests.
# This may be replaced when dependencies are built.
